// Deterministic, seedable random number generation.
//
// Every stochastic component of the flow (netlist generation, placement
// annealing, connection-list re-ordering) takes an explicit Rng so whole
// runs are reproducible from a single seed; nothing uses global RNG state.
#pragma once

#include <cstdint>
#include <cassert>

namespace vbs {

/// xoshiro256** seeded via splitmix64. Small, fast, and good enough for
/// annealing/shuffling; not for cryptography.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding, per Vigna's reference implementation.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  int next_int(int lo, int hi_inclusive) {
    assert(lo <= hi_inclusive);
    return lo + static_cast<int>(
                    next_below(static_cast<std::uint64_t>(hi_inclusive - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derives an independent child stream (for per-thread / per-macro use).
  Rng fork(std::uint64_t salt) {
    return Rng(next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x1234567u));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace vbs
