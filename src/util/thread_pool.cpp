#include "util/thread_pool.h"

#include <algorithm>

namespace vbs {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int rank = 1; rank < n; ++rank) {
    workers_.emplace_back([this, rank] { worker_main(rank); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::next_index(int rank, std::size_t* out) {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (abort_) return false;
  }
  // Own shard first: front pop, cache-friendly sequential order.
  {
    Shard& own = *shards_[static_cast<std::size_t>(rank)];
    std::lock_guard<std::mutex> lk(own.m);
    if (own.lo < own.hi) {
      *out = own.lo++;
      return true;
    }
  }
  // Steal the back half of the richest victim's remaining block. Scan order
  // starts after our own rank so thieves spread across victims.
  const int p = size();
  for (int off = 1; off < p; ++off) {
    const int victim = (rank + off) % p;
    std::size_t lo = 0;
    std::size_t take = 0;
    {
      Shard& v = *shards_[static_cast<std::size_t>(victim)];
      std::lock_guard<std::mutex> lk(v.m);
      const std::size_t n = v.hi - v.lo;
      if (n == 0) continue;
      take = (n + 1) / 2;
      lo = v.hi - take;
      v.hi = lo;
    }
    // Keep one index, deposit the rest into our own (empty) shard. Victim
    // and own locks are never held together, so lock order cannot cycle.
    if (take > 1) {
      Shard& own = *shards_[static_cast<std::size_t>(rank)];
      std::lock_guard<std::mutex> lk(own.m);
      own.lo = lo + 1;
      own.hi = lo + take;
    }
    *out = lo;
    return true;
  }
  return false;
}

void ThreadPool::drain(int rank,
                       const std::function<void(int, std::size_t)>& fn) {
  std::size_t idx = 0;
  while (next_index(rank, &idx)) {
    try {
      fn(rank, idx);
    } catch (...) {
      std::lock_guard<std::mutex> lk(m_);
      if (!error_) error_ = std::current_exception();
      abort_ = true;
    }
    std::lock_guard<std::mutex> lk(m_);
    if (--unfinished_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::worker_main(int rank) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int, std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(m_);
      work_cv_.wait(lk, [&] {
        return stop_ || (job_ != nullptr && job_id_ != seen);
      });
      if (stop_) return;
      seen = job_id_;
      job = job_;
      ++active_workers_;
    }
    drain(rank, *job);
    {
      std::lock_guard<std::mutex> lk(m_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(int, std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    // The previous job's completion wait guarantees no worker is still
    // inside drain(), so the shards can be repartitioned safely.
    const auto p = static_cast<std::size_t>(size());
    const std::size_t base = n / p;
    std::size_t rem = n % p;
    std::size_t at = 0;
    for (std::size_t r = 0; r < p; ++r) {
      const std::size_t cnt = base + (r < rem ? 1 : 0);
      Shard& s = *shards_[r];
      std::lock_guard<std::mutex> sl(s.m);
      s.lo = at;
      s.hi = at + cnt;
      at += cnt;
    }
    unfinished_ = n;
    abort_ = false;
    job_ = &fn;
    ++job_id_;
  }
  work_cv_.notify_all();
  drain(0, fn);
  {
    std::unique_lock<std::mutex> lk(m_);
    done_cv_.wait(lk, [&] {
      return (unfinished_ == 0 || abort_) && active_workers_ == 0;
    });
    job_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      abort_ = false;
      lk.unlock();
      std::rethrow_exception(e);
    }
  }
}

}  // namespace vbs
