// Build provenance: what produced a given --json report or bench point.
// Every tool and bench embeds build_info_json() so the trajectory files
// (BENCH_flow.json / BENCH_rtc.json) record compiler, build type, sanitizer
// configuration and the machine's hardware thread count alongside the
// numbers they qualify.
#pragma once

#include <string>

namespace vbs {

struct BuildInfo {
  std::string version;     ///< repo version, bumped per PR sequence
  std::string compiler;    ///< __VERSION__ of the compiler that built this TU
  std::string build_type;  ///< CMAKE_BUILD_TYPE (VBS_BUILD_TYPE macro)
  std::string sanitizers;  ///< "none", or comma-joined "thread"/"address"/...
  unsigned hardware_threads = 0;
};

/// The process's build info (hardware_threads sampled at call time).
BuildInfo build_info();

/// The "build" JSON object block: {"version": ..., "compiler": ...,
/// "build_type": ..., "sanitizers": ..., "hardware_threads": N}. `indent`
/// is the number of leading spaces on the block's own lines.
std::string build_info_json(int indent);

}  // namespace vbs
