#include "util/trace_export.h"

#include <cstdio>
#include <map>
#include <utility>

#include "util/io.h"
#include "util/json.h"

namespace vbs::telem {

namespace {

void append_args_json(std::string& out, const std::vector<SpanArg>& args) {
  out += '{';
  bool first = true;
  for (const SpanArg& a : args) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += json_escape(a.key);
    out += "\": ";
    char buf[64];
    switch (a.type) {
      case SpanArg::Type::kInt:
        std::snprintf(buf, sizeof buf, "%lld", a.i);
        out += buf;
        break;
      case SpanArg::Type::kDouble:
        std::snprintf(buf, sizeof buf, "%.9g", a.d);
        out += buf;
        break;
      case SpanArg::Type::kString:
        out += '"';
        out += json_escape(a.s);
        out += '"';
        break;
    }
  }
  out += '}';
}

std::string metadata_event(std::uint32_t pid, const char* what,
                           const char* value) {
  std::string out = "{\"ph\": \"M\", \"pid\": ";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u", pid);
  out += buf;
  out += ", \"tid\": 0, \"name\": \"";
  out += what;
  out += "\", \"args\": {\"name\": \"";
  out += value;
  out += "\"}}";
  return out;
}

}  // namespace

std::string trace_event_json(const TraceEvent& ev) {
  char buf[64];
  std::string out = "{\"ph\": \"";
  out += ev.phase;
  out += '"';
  std::snprintf(buf, sizeof buf, ", \"pid\": %u, \"tid\": %llu", ev.pid,
                static_cast<unsigned long long>(ev.tid));
  out += buf;
  // ts is microseconds; three decimals keeps the full ns resolution.
  std::snprintf(buf, sizeof buf, ", \"ts\": %llu.%03u",
                static_cast<unsigned long long>(ev.ts_ns / 1000),
                static_cast<unsigned>(ev.ts_ns % 1000));
  out += buf;
  if (ev.phase == 'X') {
    std::snprintf(buf, sizeof buf, ", \"dur\": %llu.%03u",
                  static_cast<unsigned long long>(ev.dur_ns / 1000),
                  static_cast<unsigned>(ev.dur_ns % 1000));
    out += buf;
  }
  out += ", \"cat\": \"" + json_escape(ev.category) + "\"";
  out += ", \"name\": \"" + json_escape(ev.name) + "\"";
  if (!ev.args.empty()) {
    out += ", \"args\": ";
    append_args_json(out, ev.args);
  }
  out += '}';
  return out;
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  out += "    " + metadata_event(kPidWall, "process_name", "wall-clock");
  out += ",\n    " +
         metadata_event(kPidTicks, "process_name", "modeled-ticks");
  for (const TraceEvent& ev : events) {
    out += ",\n    " + trace_event_json(ev);
  }
  out += "\n  ]\n}\n";
  return out;
}

void write_trace_file(const std::string& path,
                      const std::vector<TraceEvent>& events) {
  AtomicFile file(path);
  file.write(chrome_trace_json(events));
  file.commit();
}

void write_trace_file(const std::string& path) {
  write_trace_file(path, take_trace());
}

std::string check_event_pairing(const std::vector<TraceEvent>& events) {
  // Per (pid, tid) lane: a stack of open 'B' events plus the last seen ts.
  struct Lane {
    std::vector<const TraceEvent*> open;
    std::uint64_t last_ts = 0;
    bool any = false;
  };
  std::map<std::pair<std::uint32_t, std::uint64_t>, Lane> lanes;
  char buf[256];
  for (const TraceEvent& ev : events) {
    Lane& lane = lanes[{ev.pid, ev.tid}];
    if (ev.phase == 'B' || ev.phase == 'E') {
      // B/E streams must be time-ordered within their lane; 'X' events may
      // be emitted retroactively (the service's tick spans are) and are
      // exempt from the monotonicity check.
      if (lane.any && ev.ts_ns < lane.last_ts) {
        std::snprintf(buf, sizeof buf,
                      "lane pid=%u tid=%llu: ts goes backwards at %s/%s",
                      ev.pid, static_cast<unsigned long long>(ev.tid),
                      ev.category.c_str(), ev.name.c_str());
        return buf;
      }
      lane.last_ts = ev.ts_ns;
      lane.any = true;
    }
    if (ev.phase == 'B') {
      lane.open.push_back(&ev);
    } else if (ev.phase == 'E') {
      if (lane.open.empty()) {
        std::snprintf(buf, sizeof buf,
                      "lane pid=%u tid=%llu: E without open B at %s/%s",
                      ev.pid, static_cast<unsigned long long>(ev.tid),
                      ev.category.c_str(), ev.name.c_str());
        return buf;
      }
      const TraceEvent* b = lane.open.back();
      lane.open.pop_back();
      if (b->category != ev.category || b->name != ev.name) {
        std::snprintf(buf, sizeof buf,
                      "lane pid=%u tid=%llu: E %s/%s closes B %s/%s", ev.pid,
                      static_cast<unsigned long long>(ev.tid),
                      ev.category.c_str(), ev.name.c_str(),
                      b->category.c_str(), b->name.c_str());
        return buf;
      }
    }
  }
  for (const auto& [key, lane] : lanes) {
    if (!lane.open.empty()) {
      const TraceEvent* b = lane.open.back();
      std::snprintf(buf, sizeof buf,
                    "lane pid=%u tid=%llu: unclosed B %s/%s", key.first,
                    static_cast<unsigned long long>(key.second),
                    b->category.c_str(), b->name.c_str());
      return buf;
    }
  }
  return "";
}

}  // namespace vbs::telem
