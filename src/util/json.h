// Minimal JSON emission helpers shared by the tools, the benches and the
// telemetry exporters. The repo deliberately has no JSON library — every
// emitter hand-rolls printf-style output against a documented schema — so
// the one piece that is easy to get subtly wrong (string escaping) lives
// here, once.
#pragma once

#include <cstdio>
#include <string>

namespace vbs {

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control bytes). Our own messages are plain ASCII but file
/// paths and netlist names echoed into them may not be.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace vbs
