#include "util/table.h"

#include <algorithm>
#include <cassert>

namespace vbs {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::FILE* out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%c %-*s", c == 0 ? '|' : '|',
                   static_cast<int>(width[c]), row[c].c_str());
      std::fputc(' ', out);
    }
    std::fprintf(out, "|\n");
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    std::fputc('|', out);
    for (std::size_t i = 0; i < width[c] + 2; ++i) std::fputc('-', out);
  }
  std::fprintf(out, "|\n");
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt_int(long long v) { return std::to_string(v); }

std::string TablePrinter::fmt_bits(unsigned long long bits) {
  std::string digits = std::to_string(bits);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace vbs
