// Technology-mapped netlist: K-input LUT blocks (optionally registered),
// primary inputs and primary outputs, connected by multi-terminal nets.
//
// This is the input the design flow consumes — the equivalent of what
// VTR hands to VPR after synthesis and technology mapping.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace vbs {

using BlockId = std::int32_t;
using NetId = std::int32_t;
inline constexpr BlockId kNoBlock = -1;
inline constexpr NetId kNoNet = -1;

/// Max LUT inputs supported (ArchSpec::lut_k <= 6).
inline constexpr int kMaxLutK = 6;

enum class BlockType : std::uint8_t {
  kLut,     ///< K-input LUT + optional flip-flop; occupies one logic block
  kInput,   ///< primary input; injects at a task-boundary track port
  kOutput,  ///< primary output; taps a task-boundary track port
};

struct Block {
  BlockType type = BlockType::kLut;
  std::string name;
  /// Input nets, pins 0..K-1; kNoNet for unused pins. For kOutput blocks
  /// pin 0 carries the sampled net.
  std::array<NetId, kMaxLutK> inputs{kNoNet, kNoNet, kNoNet,
                                     kNoNet, kNoNet, kNoNet};
  /// Net driven by this block (LUT output or primary input); kNoNet for
  /// kOutput blocks.
  NetId output = kNoNet;
  /// LUT truth table (2^K bits in the low bits); ignored for I/O blocks.
  std::uint64_t lut_mask = 0;
  /// Registered output (the FF-select configuration bit).
  bool has_ff = false;

  int num_used_inputs() const {
    int n = 0;
    for (NetId in : inputs) n += (in != kNoNet);
    return n;
  }
};

struct Net {
  std::string name;
  BlockId driver = kNoBlock;
  struct Sink {
    BlockId block;
    int pin;  ///< LUT input pin index, or 0 for a kOutput block
    friend bool operator==(const Sink&, const Sink&) = default;
  };
  std::vector<Sink> sinks;
};

class Netlist {
 public:
  std::string name;

  BlockId add_block(Block b);
  NetId add_net(std::string name, BlockId driver);
  /// Connects net `n` to input pin `pin` of block `b` (updates both sides).
  void connect(NetId n, BlockId b, int pin);

  const std::vector<Block>& blocks() const { return blocks_; }
  const std::vector<Net>& nets() const { return nets_; }
  Block& block(BlockId b) { return blocks_[static_cast<std::size_t>(b)]; }
  const Block& block(BlockId b) const {
    return blocks_[static_cast<std::size_t>(b)];
  }
  Net& net(NetId n) { return nets_[static_cast<std::size_t>(n)]; }
  const Net& net(NetId n) const { return nets_[static_cast<std::size_t>(n)]; }

  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  int num_nets() const { return static_cast<int>(nets_.size()); }
  int num_luts() const;
  int num_inputs() const;
  int num_outputs() const;

  /// Structural invariants: every net's driver exists and drives it, every
  /// sink pin references back, pin indices in range, no duplicate sink
  /// pins. Throws std::logic_error with a description on violation.
  void validate() const;

 private:
  std::vector<Block> blocks_;
  std::vector<Net> nets_;
};

}  // namespace vbs
