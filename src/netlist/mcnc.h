// The 20 largest MCNC circuits as used by the paper (Table II), plus a
// factory producing a calibrated synthetic stand-in for each (the original
// BLIF files are not redistributable; see DESIGN.md).
//
// `size` is the logic array side, `mcw` the published minimum channel width
// found by VPR, `lbs` the number of occupied logic blocks. I/O counts are
// the classic MCNC values (they do not appear in Table II but are needed to
// build circuits; small deviations are harmless).
#pragma once

#include <string>
#include <vector>

#include "netlist/generator.h"
#include "netlist/netlist.h"

namespace vbs {

struct McncCircuit {
  std::string name;
  int size;  ///< logic array side (tiles)
  int mcw;   ///< published minimum channel width
  int lbs;   ///< published logic-block count
  int n_pi;
  int n_po;
};

/// The 20 benchmarks of Table II, in the paper's order.
const std::vector<McncCircuit>& mcnc20();

/// Looks a circuit up by name; throws std::out_of_range if unknown.
const McncCircuit& mcnc_by_name(const std::string& name);

/// Generator parameters calibrated so that the synthetic circuit matches
/// the published LB count exactly and approaches the published channel
/// demand (higher published MCW -> less local connectivity).
GenParams mcnc_gen_params(const McncCircuit& c, std::uint64_t seed = 1);

/// Convenience: build the calibrated synthetic netlist for a Table II row.
Netlist make_mcnc_like(const McncCircuit& c, std::uint64_t seed = 1);

}  // namespace vbs
