#include "netlist/mcnc.h"

#include <algorithm>
#include <stdexcept>

namespace vbs {

const std::vector<McncCircuit>& mcnc20() {
  // name, size, MCW, LBs (paper Table II); PI/PO counts from the MCNC suite.
  static const std::vector<McncCircuit> table = {
      {"alu4", 35, 9, 1173, 14, 8},
      {"apex2", 39, 12, 1478, 38, 3},
      {"apex4", 32, 15, 970, 9, 19},
      {"bigkey", 27, 8, 683, 229, 197},
      {"clma", 79, 15, 6226, 62, 82},
      {"des", 32, 8, 554, 256, 245},
      {"diffeq", 30, 10, 869, 64, 39},
      {"dsip", 27, 9, 680, 229, 197},
      {"elliptic", 47, 13, 2134, 131, 114},
      {"ex1010", 56, 16, 3093, 10, 10},
      {"ex5p", 28, 13, 740, 8, 63},
      {"frisc", 55, 16, 2940, 20, 116},
      {"misex3", 35, 11, 1158, 14, 14},
      {"pdc", 61, 15, 3629, 16, 40},
      {"s298", 37, 8, 1301, 4, 6},
      {"s38417", 58, 8, 3333, 29, 106},
      {"s38584.1", 65, 9, 4219, 39, 304},
      {"seq", 37, 12, 1325, 41, 35},
      {"spla", 55, 14, 3005, 16, 46},
      {"tseng", 29, 8, 799, 52, 122},
  };
  return table;
}

const McncCircuit& mcnc_by_name(const std::string& name) {
  const auto& t = mcnc20();
  const auto it = std::find_if(t.begin(), t.end(),
                               [&](const McncCircuit& c) { return c.name == name; });
  if (it == t.end()) throw std::out_of_range("unknown MCNC circuit: " + name);
  return *it;
}

GenParams mcnc_gen_params(const McncCircuit& c, std::uint64_t seed) {
  GenParams p;
  p.n_lut = c.lbs;
  p.n_pi = c.n_pi;
  p.n_po = c.n_po;
  p.seed = seed ^ (std::hash<std::string>{}(c.name) | 1);
  // Calibration: published MCW spans 8..16. Less local connectivity (lower
  // p_local, wider radius, higher fan-in) raises routed channel demand in
  // this range for our router; anchors were fit empirically (see
  // EXPERIMENTS.md, Table II reproduction). Kept gentle: real circuits stay
  // mostly local even at high channel demand, and an overly global netlist
  // makes router runtime explode quadratically with array size.
  const double x = std::clamp((c.mcw - 8.0) / 8.0, 0.0, 1.0);  // 0..1
  p.p_local = 0.90 - 0.48 * x;
  p.radius_frac = 0.05 + 0.06 * x;
  p.mean_fanin = 3.4 + 1.0 * x;
  p.global_scale_frac = 0.13 + 0.15 * x;
  return p;
}

Netlist make_mcnc_like(const McncCircuit& c, std::uint64_t seed) {
  Netlist nl = generate_netlist(mcnc_gen_params(c, seed));
  nl.name = c.name;
  return nl;
}

}  // namespace vbs
