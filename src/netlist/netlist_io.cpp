#include "netlist/netlist_io.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/io.h"

namespace vbs {

void write_netlist(std::ostream& os, const Netlist& nl) {
  os << "circuit " << (nl.name.empty() ? "unnamed" : nl.name) << "\n";
  for (BlockId bi = 0; bi < nl.num_blocks(); ++bi) {
    const Block& b = nl.block(bi);
    if (b.type == BlockType::kInput) os << "input " << b.name << "\n";
  }
  for (BlockId bi = 0; bi < nl.num_blocks(); ++bi) {
    const Block& b = nl.block(bi);
    if (b.type != BlockType::kLut) continue;
    os << "lut " << b.name << " " << std::hex << b.lut_mask << std::dec << " "
       << (b.has_ff ? 1 : 0) << " " << nl.net(b.output).name;
    for (int pin = 0; pin < kMaxLutK; ++pin) {
      const NetId in = b.inputs[static_cast<std::size_t>(pin)];
      if (in != kNoNet) os << " " << nl.net(in).name;
    }
    os << "\n";
  }
  for (BlockId bi = 0; bi < nl.num_blocks(); ++bi) {
    const Block& b = nl.block(bi);
    if (b.type == BlockType::kOutput) {
      os << "output " << b.name << " " << nl.net(b.inputs[0]).name << "\n";
    }
  }
}

std::string netlist_to_string(const Netlist& nl) {
  std::ostringstream ss;
  write_netlist(ss, nl);
  return ss.str();
}

namespace {

struct PendingLut {
  std::string name;
  std::uint64_t mask;
  bool ff;
  std::string out_net;
  std::vector<std::string> in_nets;
};

[[noreturn]] void fail(int line_no, const std::string& what) {
  throw std::runtime_error("netlist parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

}  // namespace

Netlist read_netlist(std::istream& is) {
  Netlist nl;
  // Two passes in one read: collect statements, create driver blocks/nets,
  // then hook up sinks once all net names are known.
  std::vector<PendingLut> luts;
  std::vector<std::pair<std::string, std::string>> outputs;  // name, net
  std::map<std::string, NetId> net_by_name;

  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;
    if (kw == "circuit") {
      if (!(ls >> nl.name)) fail(line_no, "missing circuit name");
    } else if (kw == "input") {
      std::string name;
      if (!(ls >> name)) fail(line_no, "missing input name");
      Block b;
      b.type = BlockType::kInput;
      b.name = name;
      const BlockId bi = nl.add_block(std::move(b));
      if (net_by_name.count(name) != 0) fail(line_no, "duplicate net " + name);
      net_by_name[name] = nl.add_net(name, bi);
    } else if (kw == "lut") {
      PendingLut p;
      std::string mask_hex, ff;
      if (!(ls >> p.name >> mask_hex >> ff >> p.out_net)) {
        fail(line_no, "malformed lut statement");
      }
      p.mask = std::stoull(mask_hex, nullptr, 16);
      p.ff = (ff == "1");
      std::string in;
      while (ls >> in) p.in_nets.push_back(in);
      if (p.in_nets.size() > kMaxLutK) fail(line_no, "too many LUT inputs");
      Block b;
      b.type = BlockType::kLut;
      b.name = p.name;
      b.lut_mask = p.mask;
      b.has_ff = p.ff;
      const BlockId bi = nl.add_block(std::move(b));
      if (net_by_name.count(p.out_net) != 0) {
        fail(line_no, "duplicate net " + p.out_net);
      }
      net_by_name[p.out_net] = nl.add_net(p.out_net, bi);
      luts.push_back(std::move(p));
    } else if (kw == "output") {
      std::string name, src;
      if (!(ls >> name >> src)) fail(line_no, "malformed output statement");
      outputs.emplace_back(name, src);
    } else {
      fail(line_no, "unknown keyword '" + kw + "'");
    }
  }

  // Hook up sinks.
  std::size_t lut_cursor = 0;
  for (BlockId bi = 0; bi < nl.num_blocks(); ++bi) {
    if (nl.block(bi).type != BlockType::kLut) continue;
    const PendingLut& p = luts[lut_cursor++];
    for (std::size_t pin = 0; pin < p.in_nets.size(); ++pin) {
      const auto it = net_by_name.find(p.in_nets[pin]);
      if (it == net_by_name.end()) {
        throw std::runtime_error("netlist parse error: undriven net " +
                                 p.in_nets[pin]);
      }
      nl.connect(it->second, bi, static_cast<int>(pin));
    }
  }
  for (const auto& [name, src] : outputs) {
    const auto it = net_by_name.find(src);
    if (it == net_by_name.end()) {
      throw std::runtime_error("netlist parse error: undriven net " + src);
    }
    Block b;
    b.type = BlockType::kOutput;
    b.name = name;
    const BlockId bi = nl.add_block(std::move(b));
    nl.connect(it->second, bi, 0);
  }
  nl.validate();
  return nl;
}

Netlist netlist_from_string(const std::string& text) {
  std::istringstream ss(text);
  return read_netlist(ss);
}

void write_netlist_file(const std::string& path, const Netlist& nl) {
  // Atomic replacement (util/io.h): checkpoints must never expose a
  // half-written netlist under the real name.
  AtomicFile out(path);
  out.write(netlist_to_string(nl));
  out.commit();
}

Netlist read_netlist_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open netlist file: " + path);
  return read_netlist(is);
}

}  // namespace vbs
