// Text serialization of netlists in a small BLIF-like format (".netl").
//
// Grammar (one statement per line, '#' comments):
//   circuit <name>
//   input  <block-name>
//   output <block-name> <source-net>
//   lut    <block-name> <mask-hex> <ff:0|1> <out-net> <in-net>*
//
// Nets are named implicitly by their driver statements; `lut`/`input`
// statements introduce the net they drive.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace vbs {

void write_netlist(std::ostream& os, const Netlist& nl);
std::string netlist_to_string(const Netlist& nl);

/// Parses the format produced by write_netlist; throws std::runtime_error
/// with a line number on malformed input.
Netlist read_netlist(std::istream& is);
Netlist netlist_from_string(const std::string& text);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void write_netlist_file(const std::string& path, const Netlist& nl);
Netlist read_netlist_file(const std::string& path);

}  // namespace vbs
