#include "netlist/netlist.h"

#include <set>
#include <stdexcept>

namespace vbs {

BlockId Netlist::add_block(Block b) {
  blocks_.push_back(std::move(b));
  return static_cast<BlockId>(blocks_.size() - 1);
}

NetId Netlist::add_net(std::string net_name, BlockId driver) {
  Net n;
  n.name = std::move(net_name);
  n.driver = driver;
  nets_.push_back(std::move(n));
  const NetId id = static_cast<NetId>(nets_.size() - 1);
  if (driver != kNoBlock) block(driver).output = id;
  return id;
}

void Netlist::connect(NetId n, BlockId b, int pin) {
  net(n).sinks.push_back({b, pin});
  block(b).inputs[static_cast<std::size_t>(pin)] = n;
}

int Netlist::num_luts() const {
  int n = 0;
  for (const Block& b : blocks_) n += (b.type == BlockType::kLut);
  return n;
}

int Netlist::num_inputs() const {
  int n = 0;
  for (const Block& b : blocks_) n += (b.type == BlockType::kInput);
  return n;
}

int Netlist::num_outputs() const {
  int n = 0;
  for (const Block& b : blocks_) n += (b.type == BlockType::kOutput);
  return n;
}

void Netlist::validate() const {
  for (NetId n = 0; n < num_nets(); ++n) {
    const Net& net = nets_[static_cast<std::size_t>(n)];
    if (net.driver == kNoBlock) {
      throw std::logic_error("net " + net.name + " has no driver");
    }
    if (net.driver < 0 || net.driver >= num_blocks() ||
        block(net.driver).output != n) {
      throw std::logic_error("net " + net.name + " driver mismatch");
    }
    if (block(net.driver).type == BlockType::kOutput) {
      throw std::logic_error("net " + net.name + " driven by an output pad");
    }
    std::set<std::pair<BlockId, int>> seen;
    for (const Net::Sink& s : net.sinks) {
      if (s.block < 0 || s.block >= num_blocks()) {
        throw std::logic_error("net " + net.name + " has out-of-range sink");
      }
      const Block& b = block(s.block);
      const int max_pin = b.type == BlockType::kLut ? kMaxLutK : 1;
      if (s.pin < 0 || s.pin >= max_pin) {
        throw std::logic_error("net " + net.name + " sink pin out of range");
      }
      if (b.type == BlockType::kInput) {
        throw std::logic_error("net " + net.name + " sinks into an input pad");
      }
      if (b.inputs[static_cast<std::size_t>(s.pin)] != n) {
        throw std::logic_error("net " + net.name + " sink back-reference broken");
      }
      if (!seen.insert({s.block, s.pin}).second) {
        throw std::logic_error("net " + net.name + " has duplicate sink pin");
      }
    }
  }
  for (BlockId bi = 0; bi < num_blocks(); ++bi) {
    const Block& b = blocks_[static_cast<std::size_t>(bi)];
    if (b.type != BlockType::kOutput && b.output == kNoNet) {
      throw std::logic_error("block " + b.name + " drives no net");
    }
    for (int pin = 0; pin < kMaxLutK; ++pin) {
      const NetId in = b.inputs[static_cast<std::size_t>(pin)];
      if (in == kNoNet) continue;
      bool found = false;
      for (const Net::Sink& s : net(in).sinks) {
        found |= (s.block == bi && s.pin == pin);
      }
      if (!found) {
        throw std::logic_error("block " + b.name +
                               " input pin not registered as net sink");
      }
    }
  }
}

}  // namespace vbs
