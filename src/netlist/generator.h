// Synthetic netlist generator.
//
// The MCNC benchmark netlists the paper uses are not redistributable, so the
// evaluation runs on seeded synthetic circuits calibrated to the published
// characteristics (Table II: logic-block count, array size, and — via the
// locality parameters — routed channel-width demand). See DESIGN.md for the
// substitution rationale.
//
// Structure: LUTs are arranged on a virtual sqrt(n) x sqrt(n) grid that the
// generator alone sees; each LUT draws its fan-in from blocks within a small
// radius with probability `p_local`, otherwise uniformly. Lower p_local /
// larger radius produce longer routed wires and higher minimum channel
// width, mimicking denser MCNC circuits.
#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace vbs {

struct GenParams {
  int n_lut = 100;
  int n_pi = 10;
  int n_po = 10;
  /// Mean LUT fan-in (clamped to [1, K]); MCNC 6-LUT mappings average ~3-4.
  double mean_fanin = 3.6;
  int lut_k = 6;
  /// Probability that a fan-in source is drawn from the local radius.
  double p_local = 0.85;
  /// Neighbourhood radius as a fraction of the virtual grid side.
  double radius_frac = 0.08;
  /// Non-local connections draw their length from an exponential profile
  /// with this mean (as a fraction of the grid side) — the Rent-like
  /// wirelength tail of real circuits. A small uniform remainder
  /// (p_uniform) keeps truly chip-crossing nets and primary-input fan-in.
  double global_scale_frac = 0.22;
  double p_uniform = 0.04;
  /// Fraction of LUTs with a registered output.
  double ff_frac = 0.3;
  std::uint64_t seed = 1;
  /// When > 0, a Rent exponent that OVERRIDES the three locality knobs
  /// (p_local, global_scale_frac, p_uniform) via apply_rent_exponent()
  /// inside generate_netlist. Typical FPGA-mapped circuits sit in
  /// [0.5, 0.75]; higher exponents mean less locality and a fatter
  /// wirelength tail, i.e. higher routed channel-width demand.
  double rent_exponent = 0.0;
};

/// Maps a Rent exponent r (clamped to [0.4, 0.9]) onto the generator's
/// three locality knobs. The mapping is a calibration, not a derivation:
/// r = 0.5 lands near the repo's default "easy" locality mix, and each
/// +0.1 of r sheds local bias and feeds the exponential/uniform tails so
/// that routed MCW climbs the way Rent's rule predicts for real circuits.
/// Exposed (rather than folded into generate_netlist) so tests can pin
/// the mapping and tools can report the effective knob values.
void apply_rent_exponent(GenParams& params, double r);

/// Generates a connected, validated netlist. Deterministic in the params.
Netlist generate_netlist(const GenParams& params);

}  // namespace vbs
