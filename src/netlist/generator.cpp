#include "netlist/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <stdexcept>

#include "util/rng.h"

namespace vbs {

namespace {

/// Virtual-grid coordinate of LUT i on a side x side layout.
struct VPos {
  int x, y;
};

}  // namespace

void apply_rent_exponent(GenParams& params, double r) {
  r = std::clamp(r, 0.4, 0.9);
  // Locality falls linearly with r: r=0.5 keeps ~82% of fan-in within the
  // radius (near the default 0.85), r=0.75 drops to ~51%.
  params.p_local = std::clamp(1.45 - 1.25 * r, 0.35, 0.95);
  // The exponential tail lengthens with r — higher-Rent circuits spread
  // their non-local wires further across the die.
  params.global_scale_frac = std::clamp(0.08 + 0.55 * (r - 0.5), 0.05, 0.45);
  // A sliver of truly uniform (chip-crossing) connections grows with r.
  params.p_uniform = std::clamp(0.015 + 0.12 * (r - 0.5), 0.01, 0.10);
}

Netlist generate_netlist(const GenParams& p_in) {
  GenParams p = p_in;
  if (p.rent_exponent > 0.0) apply_rent_exponent(p, p.rent_exponent);
  if (p.n_lut < 1 || p.n_pi < 1 || p.n_po < 1) {
    throw std::invalid_argument("generate_netlist: counts must be positive");
  }
  if (p.lut_k < 2 || p.lut_k > kMaxLutK) {
    throw std::invalid_argument("generate_netlist: bad LUT size");
  }
  Rng rng(p.seed);
  Netlist nl;
  nl.name = "synthetic";

  const int side = std::max(1, static_cast<int>(std::ceil(std::sqrt(
                                   static_cast<double>(p.n_lut)))));
  const int radius =
      std::max(1, static_cast<int>(std::lround(p.radius_frac * side)));

  std::vector<VPos> pos(static_cast<std::size_t>(p.n_lut));
  std::vector<BlockId> lut_ids(static_cast<std::size_t>(p.n_lut));
  std::vector<NetId> lut_nets(static_cast<std::size_t>(p.n_lut));

  // Primary inputs first; their virtual position is on the grid perimeter.
  std::vector<BlockId> pi_ids;
  std::vector<NetId> pi_nets;
  std::vector<VPos> pi_pos;
  for (int i = 0; i < p.n_pi; ++i) {
    Block b;
    b.type = BlockType::kInput;
    b.name = "pi" + std::to_string(i);
    const BlockId bi = nl.add_block(std::move(b));
    pi_ids.push_back(bi);
    pi_nets.push_back(nl.add_net("pi" + std::to_string(i), bi));
    // Spread around the perimeter.
    const int per = 4 * std::max(1, side);
    const int s = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(per)));
    const int q = s / std::max(1, side), r = s % std::max(1, side);
    VPos vp{};
    switch (q) {
      case 0: vp = {r, 0}; break;
      case 1: vp = {r, side - 1}; break;
      case 2: vp = {0, r}; break;
      default: vp = {side - 1, r}; break;
    }
    pi_pos.push_back(vp);
  }

  // LUT blocks on the virtual grid, row-major with jitter.
  for (int i = 0; i < p.n_lut; ++i) {
    Block b;
    b.type = BlockType::kLut;
    b.name = "lut" + std::to_string(i);
    b.lut_mask = rng.next_u64();
    if (p.lut_k < 6) b.lut_mask &= (std::uint64_t{1} << (1 << p.lut_k)) - 1;
    if (b.lut_mask == 0) b.lut_mask = 1;  // avoid constant-0 degenerate LUT
    b.has_ff = rng.next_bool(p.ff_frac);
    const BlockId bi = nl.add_block(std::move(b));
    lut_ids[static_cast<std::size_t>(i)] = bi;
    lut_nets[static_cast<std::size_t>(i)] =
        nl.add_net("n" + std::to_string(i), bi);
    pos[static_cast<std::size_t>(i)] = {i % side, i / side};
  }

  // Bucket LUTs by virtual tile for local lookups.
  std::vector<std::vector<int>> by_tile(
      static_cast<std::size_t>(side) * static_cast<std::size_t>(side));
  for (int i = 0; i < p.n_lut; ++i) {
    const VPos v = pos[static_cast<std::size_t>(i)];
    by_tile[static_cast<std::size_t>(v.y) * side + v.x].push_back(i);
  }

  auto pick_local = [&](VPos at) -> int {
    // Try a few random tiles in the Chebyshev neighbourhood.
    for (int attempt = 0; attempt < 12; ++attempt) {
      const int dx = rng.next_int(-radius, radius);
      const int dy = rng.next_int(-radius, radius);
      const int tx = std::clamp(at.x + dx, 0, side - 1);
      const int ty = std::clamp(at.y + dy, 0, side - 1);
      const auto& bucket = by_tile[static_cast<std::size_t>(ty) * side + tx];
      if (!bucket.empty()) {
        return bucket[rng.next_below(bucket.size())];
      }
    }
    return -1;
  };

  // Non-local source at an exponentially distributed manhattan distance —
  // the Rent-like wirelength tail of real circuits (a uniform target would
  // average ~2/3 of the chip diagonal and make router effort explode on
  // large arrays).
  const double gscale = std::max(1.0, p.global_scale_frac * side);
  auto pick_global = [&](VPos at) -> int {
    for (int attempt = 0; attempt < 12; ++attempt) {
      const double u = rng.next_double();
      int dist = 1 + static_cast<int>(-gscale * std::log(1.0 - u));
      dist = std::min(dist, 2 * side);
      const int a = rng.next_int(0, dist);
      const int dx = rng.next_bool(0.5) ? a : -a;
      const int dy = rng.next_bool(0.5) ? dist - a : -(dist - a);
      const int tx = std::clamp(at.x + dx, 0, side - 1);
      const int ty = std::clamp(at.y + dy, 0, side - 1);
      const auto& bucket = by_tile[static_cast<std::size_t>(ty) * side + tx];
      if (!bucket.empty()) {
        return bucket[rng.next_below(bucket.size())];
      }
    }
    return -1;
  };

  // Fan-in wiring.
  for (int i = 0; i < p.n_lut; ++i) {
    // Fan-in count: mean_fanin on average, within [1, K].
    int fanin = 0;
    for (int k = 0; k < p.lut_k; ++k) {
      fanin += rng.next_bool(p.mean_fanin / p.lut_k) ? 1 : 0;
    }
    fanin = std::clamp(fanin, 1, p.lut_k);

    std::set<NetId> chosen;
    int pin = 0;
    int guard = 0;
    while (pin < fanin && guard < 100) {
      ++guard;
      NetId src = kNoNet;
      const double roll = rng.next_double();
      if (roll < p.p_local) {
        const int j = pick_local(pos[static_cast<std::size_t>(i)]);
        if (j >= 0 && j != i) src = lut_nets[static_cast<std::size_t>(j)];
      } else if (roll < 1.0 - p.p_uniform) {
        const int j = pick_global(pos[static_cast<std::size_t>(i)]);
        if (j >= 0 && j != i) src = lut_nets[static_cast<std::size_t>(j)];
      } else {
        // Uniform remainder: any LUT net or a primary input.
        const std::uint64_t n_src =
            static_cast<std::uint64_t>(p.n_lut) + pi_nets.size();
        const std::uint64_t r = rng.next_below(n_src);
        src = r < static_cast<std::uint64_t>(p.n_lut)
                  ? lut_nets[static_cast<std::size_t>(r)]
                  : pi_nets[static_cast<std::size_t>(
                        r - static_cast<std::uint64_t>(p.n_lut))];
        if (src == lut_nets[static_cast<std::size_t>(i)]) src = kNoNet;
      }
      if (src == kNoNet || chosen.count(src) != 0) continue;
      chosen.insert(src);
      nl.connect(src, lut_ids[static_cast<std::size_t>(i)], pin);
      ++pin;
    }
    if (pin == 0) {
      // Guarantee at least one input: fall back to a primary input.
      const NetId src = pi_nets[rng.next_below(pi_nets.size())];
      nl.connect(src, lut_ids[static_cast<std::size_t>(i)], 0);
    }
  }

  // Primary outputs tap distinct LUT nets where possible.
  std::vector<int> po_src(static_cast<std::size_t>(p.n_lut));
  for (int i = 0; i < p.n_lut; ++i) po_src[static_cast<std::size_t>(i)] = i;
  rng.shuffle(po_src);
  for (int i = 0; i < p.n_po; ++i) {
    Block b;
    b.type = BlockType::kOutput;
    b.name = "po" + std::to_string(i);
    const BlockId bi = nl.add_block(std::move(b));
    const int src =
        po_src[static_cast<std::size_t>(i) % po_src.size()];
    nl.connect(lut_nets[static_cast<std::size_t>(src)], bi, 0);
  }

  (void)pi_pos;  // virtual PI positions only bias future extensions
  nl.validate();
  return nl;
}

}  // namespace vbs
