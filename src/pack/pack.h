// Packing: maps netlist blocks onto the physical block kinds of the fabric.
//
// The modelled architecture has one K-LUT per logic block, so packing is a
// 1:1 assignment (the paper packs MCNC circuits into single-6-LUT blocks the
// same way). The packer still owns two real responsibilities:
//   * producing the placeable-instance lists (LUT instances, I/O instances)
//     in a stable order the placer and router index by, and
//   * fixing the LUT input pin assignment (net -> physical pin), including
//     compaction of sparse pin usage onto the lowest-numbered pins.
#pragma once

#include <vector>

#include "arch/arch_spec.h"
#include "netlist/netlist.h"

namespace vbs {

struct PackedDesign {
  /// LUT instances in placement order; values are netlist BlockIds.
  std::vector<BlockId> luts;
  /// I/O instances in placement order (both kInput and kOutput blocks).
  std::vector<BlockId> ios;
  /// Per LUT instance, the net on each physical input pin (kNoNet unused),
  /// after pin compaction.
  std::vector<std::array<NetId, kMaxLutK>> lut_pins;

  int num_luts() const { return static_cast<int>(luts.size()); }
  int num_ios() const { return static_cast<int>(ios.size()); }
};

/// Packs `nl` for an architecture with K = spec.lut_k. Throws
/// std::invalid_argument if any LUT uses more than K inputs.
PackedDesign pack_netlist(const Netlist& nl, const ArchSpec& spec);

}  // namespace vbs
