#include "pack/pack.h"

#include <stdexcept>

namespace vbs {

PackedDesign pack_netlist(const Netlist& nl, const ArchSpec& spec) {
  PackedDesign pd;
  for (BlockId bi = 0; bi < nl.num_blocks(); ++bi) {
    const Block& b = nl.block(bi);
    switch (b.type) {
      case BlockType::kLut: {
        if (b.num_used_inputs() > spec.lut_k) {
          throw std::invalid_argument("pack: block " + b.name + " uses " +
                                      std::to_string(b.num_used_inputs()) +
                                      " inputs but K = " +
                                      std::to_string(spec.lut_k));
        }
        pd.luts.push_back(bi);
        // Compact used nets onto pins 0..n-1 preserving order.
        std::array<NetId, kMaxLutK> pins;
        pins.fill(kNoNet);
        int next = 0;
        for (NetId in : b.inputs) {
          if (in != kNoNet) pins[static_cast<std::size_t>(next++)] = in;
        }
        pd.lut_pins.push_back(pins);
        break;
      }
      case BlockType::kInput:
      case BlockType::kOutput:
        pd.ios.push_back(bi);
        break;
    }
  }
  return pd;
}

}  // namespace vbs
