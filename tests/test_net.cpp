// Network-layer tests: the MPSC ring, the timer wheel on a manual clock,
// the event loop over real socketpairs, connection fault injection, and
// the vbs.rpc.v1 frame codec (round-trip, truncation, bad checksum,
// oversized length prefix, handshake payloads and proofs).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/conn.h"
#include "net/event_loop.h"
#include "net/poller.h"
#include "net/ring.h"
#include "net/timer_wheel.h"
#include "rtc/server/wire.h"
#include "util/error.h"

namespace vbs {
namespace {

using net::Conn;
using net::EventLoop;
using net::IoStatus;
using net::ManualNetClock;
using net::MpscRing;
using net::TimerWheel;

// --- MpscRing ---------------------------------------------------------------

TEST(MpscRing, FifoSingleProducer) {
  MpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.push(int{i}));
  EXPECT_FALSE(ring.push(99));  // full fails, never blocks
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.pop(v));
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  MpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  MpscRing<int> ring2(16);
  EXPECT_EQ(ring2.capacity(), 16u);
}

TEST(MpscRing, WrapsAcrossManyLaps) {
  MpscRing<int> ring(4);
  int v = -1;
  for (int lap = 0; lap < 1000; ++lap) {
    EXPECT_TRUE(ring.push(int{lap}));
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, lap);
  }
}

TEST(MpscRing, ConcurrentProducersLoseNothing) {
  MpscRing<int> ring(64);
  constexpr int kPerProducer = 20000;
  constexpr int kProducers = 3;
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::thread consumer([&] {
    int v = 0;
    while (popped.load() < kProducers * kPerProducer) {
      if (ring.pop(v)) {
        sum.fetch_add(v);
        popped.fetch_add(1);
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        while (!ring.push(int{value})) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  long long expect = 0;
  for (int i = 0; i < kProducers * kPerProducer; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

// --- TimerWheel -------------------------------------------------------------

TEST(TimerWheel, FiresAtDeadlineNotBefore) {
  TimerWheel wheel(0);
  int fired = 0;
  wheel.arm(10, [&] { ++fired; });
  EXPECT_EQ(wheel.advance_to(9), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.advance_to(10), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel(0);
  int fired = 0;
  const net::TimerId id = wheel.arm(5, [&] { ++fired; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // already gone
  wheel.advance_to(100);
  EXPECT_EQ(fired, 0);
}

TEST(TimerWheel, MultiRevolutionDeadlines) {
  TimerWheel wheel(0);  // 256 slots: 1000ms is multiple revolutions out
  int fired = 0;
  wheel.arm(1000, [&] { ++fired; });
  wheel.arm(300, [&] { ++fired; });
  EXPECT_EQ(wheel.advance_to(299), 0u);
  EXPECT_EQ(wheel.advance_to(300), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.advance_to(999), 0u);
  EXPECT_EQ(wheel.advance_to(1005), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(TimerWheel, NextTimeoutHint) {
  TimerWheel wheel(0);
  EXPECT_EQ(wheel.next_timeout_ms(0), -1);
  wheel.arm(40, [] {});
  EXPECT_EQ(wheel.next_timeout_ms(0), 40);
  EXPECT_EQ(wheel.next_timeout_ms(38), 2);
  EXPECT_EQ(wheel.next_timeout_ms(45), 0);  // already due
}

TEST(TimerWheel, CallbackMayRearmWithinSameAdvance) {
  TimerWheel wheel(0);
  std::vector<int> order;
  wheel.arm(5, [&] {
    order.push_back(1);
    wheel.arm(8, [&] { order.push_back(2); });
  });
  // Both the original and the re-armed timer are due by t=10.
  EXPECT_EQ(wheel.advance_to(10), 2u);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

// --- EventLoop ---------------------------------------------------------------

struct SocketPair {
  int a = -1, b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
    net::set_nonblocking(a);
    net::set_nonblocking(b);
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  /// Detach ownership (a Conn will close it).
  int take_a() { int fd = a; a = -1; return fd; }
  int take_b() { int fd = b; b = -1; return fd; }
};

TEST(EventLoop, SocketpairEcho) {
  SocketPair sp;
  EventLoop loop;
  std::string received;
  loop.watch(sp.a, net::kReadable, [&](std::uint32_t) {
    char buf[256];
    const ssize_t n = ::recv(sp.a, buf, sizeof(buf), 0);
    if (n > 0) received.append(buf, static_cast<std::size_t>(n));
    if (received.size() >= 5) loop.stop();
  });
  ASSERT_EQ(::send(sp.b, "hello", 5, 0), 5);
  loop.run();
  EXPECT_EQ(received, "hello");
}

TEST(EventLoop, PostFromAnotherThreadWakesParkedLoop) {
  EventLoop loop;
  std::atomic<bool> ran{false};
  std::thread poster([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.post([&] {
      ran.store(true);
      loop.stop();
    });
  });
  loop.run();  // parked in epoll_wait until the post's eventfd wake
  poster.join();
  EXPECT_TRUE(ran.load());
}

TEST(EventLoop, TimerFiresOnSteadyClock) {
  EventLoop loop;
  bool fired = false;
  loop.arm_timer(5, [&] {
    fired = true;
    loop.stop();
  });
  loop.run();
  EXPECT_TRUE(fired);
}

TEST(EventLoop, RunOnceProcessesPostedWork) {
  EventLoop loop;
  int count = 0;
  loop.post([&] { ++count; });
  loop.post([&] { ++count; });
  EXPECT_GE(loop.run_once(0), 2u);
  EXPECT_EQ(count, 2);
}

// --- Conn --------------------------------------------------------------------

TEST(Conn, RoundTripAndBuffering) {
  SocketPair sp;
  Conn a(sp.take_a(), 1);
  Conn b(sp.take_b(), 2);
  EXPECT_EQ(a.queue_write("ping"), IoStatus::kOk);
  EXPECT_EQ(b.on_readable(), IoStatus::kOk);  // made progress, kernel empty
  EXPECT_EQ(b.inbuf(), "ping");
  EXPECT_EQ(a.bytes_out(), 4u);
  EXPECT_EQ(b.bytes_in(), 4u);
}

TEST(Conn, EofIsClosed) {
  SocketPair sp;
  Conn a(sp.take_a(), 1);
  { Conn b(sp.take_b(), 2); }  // destructor closes the peer
  EXPECT_EQ(a.on_readable(), IoStatus::kClosed);
}

TEST(Conn, NetEagainFaultBlocksDeterministically) {
  const FaultPlan plan = FaultPlan::parse("seed=3,net_eagain=1");
  SocketPair sp;
  Conn a(sp.take_a(), 7, plan);
  Conn b(sp.take_b(), 8);
  ASSERT_EQ(b.queue_write("data"), IoStatus::kOk);
  // Rate 1.0: every read op on the faulty conn is a spurious EAGAIN.
  EXPECT_EQ(a.on_readable(), IoStatus::kBlocked);
  EXPECT_EQ(a.on_readable(), IoStatus::kBlocked);
  EXPECT_TRUE(a.inbuf().empty());
}

TEST(Conn, NetDropFaultSeversConnection) {
  const FaultPlan plan = FaultPlan::parse("seed=3,net_drop=1");
  SocketPair sp;
  Conn a(sp.take_a(), 7, plan);
  EXPECT_EQ(a.on_readable(), IoStatus::kClosed);
  EXPECT_TRUE(a.closed());
}

TEST(Conn, NetShortReadStillMakesProgress) {
  const FaultPlan plan = FaultPlan::parse("seed=3,net_short=1");
  SocketPair sp;
  Conn a(sp.take_a(), 7, plan);
  Conn b(sp.take_b(), 8);
  ASSERT_EQ(b.queue_write("0123456789"), IoStatus::kOk);
  // Every read is truncated to a few bytes, but repeated calls still
  // drain the socket: short reads slow a peer down, they don't stall it.
  for (int i = 0; i < 10 && a.inbuf().size() < 10; ++i) {
    (void)a.on_readable();
  }
  EXPECT_EQ(a.inbuf(), "0123456789");
}

// --- wire codec --------------------------------------------------------------

TEST(Wire, FrameRoundTripAllTypes) {
  using rpc::FrameType;
  rpc::FrameReader reader;
  for (std::uint8_t t = 1; t <= 17; ++t) {
    const auto type = static_cast<FrameType>(t);
    const std::string payload = "payload-" + std::to_string(t);
    std::string buf = rpc::encode_frame(type, 0xabcdef01ull + t, payload);
    rpc::Frame f;
    ASSERT_TRUE(reader.next(buf, f));
    EXPECT_EQ(f.type, type);
    EXPECT_EQ(f.corr, 0xabcdef01ull + t);
    EXPECT_EQ(f.payload, payload);
    EXPECT_TRUE(buf.empty());  // fully consumed
  }
}

TEST(Wire, PartialFrameWaitsForMoreBytes) {
  rpc::FrameReader reader;
  const std::string whole =
      rpc::encode_frame(rpc::FrameType::kPing, 42, "abc");
  rpc::Frame f;
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    std::string buf = whole.substr(0, cut);
    EXPECT_FALSE(reader.next(buf, f)) << "cut=" << cut;
    EXPECT_EQ(buf.size(), cut);  // nothing consumed
  }
  std::string buf = whole;
  EXPECT_TRUE(reader.next(buf, f));
}

TEST(Wire, TwoFramesInOneBuffer) {
  rpc::FrameReader reader;
  std::string buf = rpc::encode_frame(rpc::FrameType::kPing, 1, "a") +
                    rpc::encode_frame(rpc::FrameType::kPong, 2, "b");
  rpc::Frame f;
  ASSERT_TRUE(reader.next(buf, f));
  EXPECT_EQ(f.corr, 1u);
  ASSERT_TRUE(reader.next(buf, f));
  EXPECT_EQ(f.corr, 2u);
  EXPECT_TRUE(buf.empty());
}

TEST(Wire, BadChecksumIsNetFrame) {
  rpc::FrameReader reader;
  std::string buf = rpc::encode_frame(rpc::FrameType::kPing, 7, "xyz");
  buf.back() ^= 0x1;  // flip one payload bit
  rpc::Frame f;
  try {
    reader.next(buf, f);
    FAIL() << "expected VbsError";
  } catch (const VbsError& e) {
    EXPECT_EQ(e.code(), VbsErrc::kNetFrame);
  }
}

TEST(Wire, OversizedLengthPrefixRejectedBeforePayload) {
  rpc::FrameReader reader(1024);
  // Only the 4-byte prefix: the declared length alone must trip the
  // limit, long before any payload could arrive.
  std::string buf;
  rpc::put_u32(buf, 1u << 30);
  rpc::Frame f;
  try {
    reader.next(buf, f);
    FAIL() << "expected VbsError";
  } catch (const VbsError& e) {
    EXPECT_EQ(e.code(), VbsErrc::kNetFrame);
  }
}

TEST(Wire, ShortDeclaredLengthRejected) {
  rpc::FrameReader reader;
  std::string buf;
  rpc::put_u32(buf, 5);  // < 18: cannot hold the fixed header
  buf.append(20, '\0');
  rpc::Frame f;
  EXPECT_THROW(reader.next(buf, f), VbsError);
}

TEST(Wire, UnknownVersionAndTypeRejected) {
  rpc::FrameReader reader;
  rpc::Frame f;
  {
    std::string buf = rpc::encode_frame(rpc::FrameType::kPing, 1, "");
    buf[4] = 9;  // version byte
    EXPECT_THROW(reader.next(buf, f), VbsError);
  }
  {
    std::string buf = rpc::encode_frame(rpc::FrameType::kPing, 1, "");
    buf[5] = 99;  // type byte (checksum now wrong too; either check trips)
    EXPECT_THROW(reader.next(buf, f), VbsError);
  }
}

TEST(Wire, PayloadCodecsRoundTrip) {
  {
    const rpc::HelloMsg m{-1, 0xfeedull};
    const rpc::HelloMsg r = rpc::decode_hello(rpc::encode_hello(m));
    EXPECT_EQ(r.tenant, -1);
    EXPECT_EQ(r.client_nonce, 0xfeedull);
  }
  {
    const rpc::AuthOkMsg m{1234567890123ll, 77};
    const rpc::AuthOkMsg r = rpc::decode_auth_ok(rpc::encode_auth_ok(m));
    EXPECT_EQ(r.next_request_id, 1234567890123ll);
    EXPECT_EQ(r.session, 77u);
  }
  {
    const rpc::ErrorMsg m{VbsErrc::kQueueFull, "full up"};
    const rpc::ErrorMsg r = rpc::decode_error(rpc::encode_error(m));
    EXPECT_EQ(r.code, VbsErrc::kQueueFull);
    EXPECT_EQ(r.message, "full up");
  }
  {
    const rpc::TargetMsg m{3, 42};
    const rpc::TargetMsg r = rpc::decode_target(rpc::encode_target(m));
    EXPECT_EQ(r.tenant, 3);
    EXPECT_EQ(r.target, 42);
  }
  {
    RequestResult res;
    res.request = 9;
    res.kind = RequestKind::kRelocate;
    res.status = RequestStatus::kShed;
    res.task = 5;
    res.rect = {1, 2, 3, 4};
    res.tenant = -1;
    res.priority = 10;
    res.attempts = 3;
    res.cache_hit = true;
    res.evicted_tasks = 2;
    res.code = VbsErrc::kQueueFull;
    res.latency_ticks = 100;
    res.queue_wait_ticks = 60;
    res.backoff_ticks = 30;
    res.spike_ticks = 8;
    res.exec_ticks = 2;
    const RequestResult r = rpc::decode_result(rpc::encode_result(res));
    EXPECT_EQ(r.request, 9);
    EXPECT_EQ(r.kind, RequestKind::kRelocate);
    EXPECT_EQ(r.status, RequestStatus::kShed);
    EXPECT_EQ(r.task, 5);
    EXPECT_EQ(r.rect.x, 1);
    EXPECT_EQ(r.rect.h, 4);
    EXPECT_EQ(r.tenant, -1);
    EXPECT_EQ(r.priority, 10);
    EXPECT_EQ(r.attempts, 3);
    EXPECT_TRUE(r.cache_hit);
    EXPECT_EQ(r.evicted_tasks, 2);
    EXPECT_EQ(r.code, VbsErrc::kQueueFull);
    EXPECT_EQ(r.latency_ticks, 100);
    EXPECT_EQ(r.queue_wait_ticks, 60);
    EXPECT_EQ(r.backoff_ticks, 30);
    EXPECT_EQ(r.spike_ticks, 8);
    EXPECT_EQ(r.exec_ticks, 2);
  }
  {
    rpc::StatReplyMsg m;
    m.fingerprint = 0xdeadbeefull;
    m.now_ticks = 55;
    m.pending = 3;
    m.shed = 4;
    const rpc::StatReplyMsg r =
        rpc::decode_stat_reply(rpc::encode_stat_reply(m));
    EXPECT_EQ(r.fingerprint, 0xdeadbeefull);
    EXPECT_EQ(r.now_ticks, 55);
    EXPECT_EQ(r.pending, 3u);
    EXPECT_EQ(r.shed, 4);
  }
}

TEST(Wire, TruncatedPayloadIsNetFrame) {
  const std::string good = rpc::encode_hello({5, 0x1234});
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    try {
      rpc::decode_hello(good.substr(0, cut));
      FAIL() << "cut=" << cut;
    } catch (const VbsError& e) {
      EXPECT_EQ(e.code(), VbsErrc::kNetFrame);
    }
  }
}

TEST(Wire, LoadPayloadReusesArtifactContainer) {
  BitVector bits;
  for (int i = 0; i < 77; ++i) bits.push_back(i % 3 == 0);
  const std::string payload = rpc::encode_load(4, bits);
  const rpc::LoadMsg m = rpc::decode_load(payload);
  EXPECT_EQ(m.tenant, 4);
  EXPECT_EQ(m.stream, bits);

  // Tamper with the container body: the content hash must catch it and
  // surface as a wire-level kNetFrame, not a crash.
  std::string bad = payload;
  bad.back() = static_cast<char>(bad.back() ^ 0x40);
  try {
    rpc::decode_load(bad);
    FAIL() << "expected VbsError";
  } catch (const VbsError& e) {
    EXPECT_EQ(e.code(), VbsErrc::kNetFrame);
  }
}

TEST(Wire, AuthProofBindsEveryInput) {
  const std::uint64_t secret = rpc::tenant_secret(42, 3);
  const std::uint64_t proof = rpc::auth_proof(secret, 3, 100, 200);
  EXPECT_EQ(proof, rpc::auth_proof(secret, 3, 100, 200));  // deterministic
  EXPECT_NE(proof, rpc::auth_proof(secret + 1, 3, 100, 200));
  EXPECT_NE(proof, rpc::auth_proof(secret, 4, 100, 200));
  EXPECT_NE(proof, rpc::auth_proof(secret, 3, 101, 200));
  EXPECT_NE(proof, rpc::auth_proof(secret, 3, 100, 201));
  // Different tenants get different secrets from the same seed.
  EXPECT_NE(rpc::tenant_secret(42, 0), rpc::tenant_secret(42, 1));
  EXPECT_NE(rpc::tenant_secret(42, 0), rpc::tenant_secret(43, 0));
}

}  // namespace
}  // namespace vbs
