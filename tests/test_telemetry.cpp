// Telemetry-layer tests: the metrics registry (counters, gauges,
// histograms, deterministic shard merge), the injectable clock, span
// tracing, and the contract the whole layer exists to honor — enabling
// telemetry changes NOTHING observable: flow artifacts stay byte-identical
// and a journaled, faulted service replay fingerprints identically at any
// thread count. Also the per-request latency breakdown: the tick identity
// on every result, the TenantStats sums, and the modeled-tick trace spans
// all describe the same numbers.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "flow/flow.h"
#include "netlist/generator.h"
#include "rtc/service/service.h"
#include "rtc/service/trace.h"
#include "util/telemetry.h"
#include "util/trace_export.h"
#include "vbs/encoder.h"

namespace vbs {
namespace {

ArchSpec test_arch() {
  ArchSpec arch;
  arch.chan_width = 8;
  return arch;
}

BitVector make_stream(int n_lut, int grid, std::uint64_t seed,
                      const ArchSpec& arch, int cluster = 1, int threads = 1) {
  GenParams p;
  p.n_lut = n_lut;
  p.n_pi = 3;
  p.n_po = 3;
  p.seed = seed;
  FlowOptions o;
  o.arch = arch;
  o.seed = seed;
  o.threads = threads;
  FlowResult r = run_flow(generate_netlist(p), grid, grid, o);
  EXPECT_TRUE(r.routed());
  EncodeOptions eo;
  eo.cluster = cluster;
  return serialize_vbs(encode_vbs(*r.fabric, r.netlist, r.packed, r.placement,
                                  r.routing.routes, eo));
}

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("vbs_telem_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

// --- metrics registry -------------------------------------------------------

TEST(Telemetry, DisabledIsANoOp) {
  telem::reset();
  ASSERT_FALSE(telem::enabled());
  telem::counter_add("t.count", 5);
  telem::gauge_set("t.gauge", 1.5);
  telem::histogram_record("t.hist", 0.25);
  { telem::Span span("test", "ignored"); }
  const telem::MetricsSnapshot snap = telem::snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_TRUE(telem::take_trace().empty());
}

TEST(Telemetry, CountersGaugesHistograms) {
  telem::ScopedEnable on;
  telem::reset();
  telem::counter_add("t.count");
  telem::counter_add("t.count", 4);
  telem::gauge_set("t.gauge", 2.0);
  telem::gauge_set("t.gauge", 7.5);  // merged by max
  for (int i = 1; i <= 100; ++i) {
    telem::histogram_record("t.hist", static_cast<double>(i));
  }
  const telem::MetricsSnapshot snap = telem::snapshot();
  ASSERT_EQ(snap.counters.count("t.count"), 1u);
  EXPECT_EQ(snap.counters.at("t.count"), 5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("t.gauge"), 7.5);
  const telem::HistogramSnapshot& h = snap.histograms.at("t.hist");
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.sum, 5050.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  // Power-of-two buckets: percentiles are interpolations, so only bounds
  // are promised — but they must be monotone and clamped to [min, max].
  const double p50 = h.percentile(0.50);
  const double p99 = h.percentile(0.99);
  EXPECT_GE(p50, h.min);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, h.max);
}

TEST(Telemetry, HistogramBucketsCoverTheRealLine) {
  EXPECT_EQ(telem::histogram_bucket(0.0), 0);
  EXPECT_EQ(telem::histogram_bucket(-3.0), 0);
  for (double v : {1e-12, 0.001, 0.5, 1.0, 3.7, 1e6, 1e30}) {
    const int b = telem::histogram_bucket(v);
    ASSERT_GE(b, 1);
    ASSERT_LT(b, telem::kHistBuckets);
    // Bucket i covers [floor(i), floor(i+1)); the clamp buckets at both
    // ends absorb the tails, so only the unclamped edge is promised.
    if (b > 1) EXPECT_GE(v, telem::histogram_bucket_floor(b)) << v;
    if (b < telem::kHistBuckets - 1) {
      EXPECT_LT(v, telem::histogram_bucket_floor(b + 1)) << v;
    }
  }
}

TEST(Telemetry, ManualClockDrivesSeconds) {
  telem::ManualClock clock;
  telem::ScopedClock scoped(&clock);
  const std::uint64_t t0 = telem::now_ns();
  EXPECT_EQ(t0, 0u);
  clock.advance_seconds(1.5);
  EXPECT_DOUBLE_EQ(telem::seconds_since(t0), 1.5);
  clock.advance_ns(500000000);
  EXPECT_DOUBLE_EQ(telem::seconds_since(t0), 2.0);
}

TEST(Telemetry, SpansRecordManualClockDurations) {
  telem::ManualClock clock;
  telem::ScopedClock scoped(&clock);
  telem::ScopedEnable on;
  telem::reset();
  {
    telem::Span outer("test", "outer");
    clock.advance_ns(1000);
    {
      telem::Span inner("test", "inner");
      clock.advance_ns(250);
    }
    clock.advance_ns(1000);
  }
  const std::vector<telem::TraceEvent> ev = telem::take_trace();
  ASSERT_EQ(ev.size(), 4u);  // B outer, B inner, E inner, E outer
  EXPECT_EQ(telem::check_event_pairing(ev), "");
  EXPECT_EQ(ev[0].phase, 'B');
  EXPECT_EQ(ev[0].name, "outer");
  EXPECT_EQ(ev[1].name, "inner");
  EXPECT_EQ(ev[2].phase, 'E');
  EXPECT_EQ(ev[2].ts_ns - ev[1].ts_ns, 250u);
  EXPECT_EQ(ev[3].ts_ns - ev[0].ts_ns, 2250u);
}

TEST(Telemetry, ConcurrentUpdatesMergeExactly) {
  telem::ScopedEnable on;
  telem::reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        telem::counter_add("t.concurrent");
        telem::histogram_record("t.spread", static_cast<double>(t + 1));
        if (i % 100 == 0) {
          telem::Span span("test", "tick");
          span.arg("thread", static_cast<long long>(t));
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const telem::MetricsSnapshot snap = telem::snapshot();
  EXPECT_EQ(snap.counters.at("t.concurrent"),
            static_cast<long long>(kThreads) * kPerThread);
  EXPECT_EQ(snap.histograms.at("t.spread").count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Every span closed on its own thread: pairing holds per lane.
  EXPECT_EQ(telem::check_event_pairing(telem::take_trace()), "");
}

TEST(Telemetry, SnapshotMergeIsDeterministic) {
  telem::ScopedEnable on;
  telem::reset();
  std::vector<std::thread> pool;
  for (int t = 0; t < 6; ++t) {
    pool.emplace_back([t] {
      for (int i = 0; i < 500; ++i) {
        telem::histogram_record("t.sum", 0.1 * (t + 1));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  // Double sums merge via sorted partials: repeated snapshots agree bitwise.
  const telem::MetricsSnapshot a = telem::snapshot();
  const telem::MetricsSnapshot b = telem::snapshot();
  EXPECT_DOUBLE_EQ(a.histograms.at("t.sum").sum,
                   b.histograms.at("t.sum").sum);
  EXPECT_EQ(a.to_json(0), b.to_json(0));
}

// --- byte-identity with telemetry on vs off ---------------------------------

TEST(Telemetry, FlowArtifactsByteIdenticalOnVsOff) {
  const ArchSpec arch = test_arch();
  for (const int threads : {1, 2, 8}) {
    const BitVector off = make_stream(24, 6, 11, arch, 2, threads);
    BitVector on;
    {
      telem::ScopedEnable enable;
      telem::reset();
      on = make_stream(24, 6, 11, arch, 2, threads);
      EXPECT_FALSE(telem::snapshot().empty());  // it really was recording
      telem::reset();
    }
    EXPECT_EQ(on, off) << "threads " << threads;
  }
}

/// A journaled, faulted overload replay; returns the final fingerprint and
/// the per-request outcome stream.
struct ServiceRun {
  std::uint64_t fingerprint = 0;
  std::vector<int> statuses;
  std::vector<long long> latencies;
  std::map<int, TenantStats> tenants;
  std::vector<RequestResult> results;
};

ServiceRun replay_faulted(const Trace& trace,
                          const std::vector<BitVector>& streams,
                          const ArchSpec& arch, int threads,
                          const std::string& journal_dir) {
  ServiceOptions opts;
  opts.threads = threads;
  opts.queue_limit = 8;
  opts.deadline_ticks = 12;
  opts.faults = FaultPlan::parse("seed=9,decode=0.05,alloc=0.05,latency=0.1x6");
  ReconfigService svc(arch, trace.fabric_w, trace.fabric_h, opts);
  if (!journal_dir.empty()) svc.open_journal(journal_dir);
  svc.set_tenant_priority(0, 10);
  ServiceRun out;
  std::vector<RequestId> req_of_event(trace.events.size(), kNoRequest);
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& e = trace.events[i];
    switch (e.kind) {
      case TraceEvent::Kind::kLoad:
        req_of_event[i] = svc.submit_load(
            streams[static_cast<std::size_t>(e.task_kind)], e.tenant);
        break;
      case TraceEvent::Kind::kUnload:
        req_of_event[i] = svc.submit_unload(
            req_of_event[static_cast<std::size_t>(e.ref)], e.tenant);
        break;
      case TraceEvent::Kind::kRelocate:
        req_of_event[i] = svc.submit_relocate(
            req_of_event[static_cast<std::size_t>(e.ref)], e.tenant);
        break;
    }
    if (i + 1 == trace.events.size() || trace.events[i + 1].tick != e.tick) {
      for (RequestResult& r : svc.drain()) {
        out.statuses.push_back(static_cast<int>(r.status));
        out.latencies.push_back(r.latency_ticks);
        out.results.push_back(std::move(r));
      }
    }
  }
  out.tenants = svc.tenant_stats();
  out.fingerprint = svc.state_fingerprint();
  return out;
}

Trace overload_trace() {
  TraceGenOptions gopts;
  gopts.pattern = ArrivalPattern::kFlashCrowd;
  gopts.events = 48;
  gopts.ticks = 16;
  gopts.kinds = 3;
  return generate_trace(gopts);
}

TEST(Telemetry, FaultedServiceReplayIdenticalOnVsOff) {
  const ArchSpec arch = test_arch();
  const Trace trace = overload_trace();
  std::vector<BitVector> streams;
  for (const TraceTaskKind& k : trace.kinds) {
    streams.push_back(make_stream(k.n_lut, k.grid, k.seed, arch, k.cluster));
  }
  for (const int threads : {1, 2, 8}) {
    TempDir joff("off" + std::to_string(threads));
    const ServiceRun off =
        replay_faulted(trace, streams, arch, threads, joff.path);
    TempDir jon("on" + std::to_string(threads));
    ServiceRun on;
    {
      telem::ScopedEnable enable;
      telem::reset();
      on = replay_faulted(trace, streams, arch, threads, jon.path);
      telem::reset();
    }
    EXPECT_EQ(on.fingerprint, off.fingerprint) << "threads " << threads;
    EXPECT_EQ(on.statuses, off.statuses) << "threads " << threads;
    EXPECT_EQ(on.latencies, off.latencies) << "threads " << threads;
  }
}

// --- the per-request latency breakdown --------------------------------------

TEST(Telemetry, BreakdownTicksTileEveryRequest) {
  const ArchSpec arch = test_arch();
  const Trace trace = overload_trace();
  std::vector<BitVector> streams;
  for (const TraceTaskKind& k : trace.kinds) {
    streams.push_back(make_stream(k.n_lut, k.grid, k.seed, arch, k.cluster));
  }
  const ServiceRun run = replay_faulted(trace, streams, arch, 2, "");
  ASSERT_FALSE(run.results.empty());
  std::map<int, TenantStats> sums;
  bool saw_backoff = false, saw_spike = false;
  for (const RequestResult& r : run.results) {
    EXPECT_EQ(r.latency_ticks, r.queue_wait_ticks + r.backoff_ticks +
                                   r.spike_ticks + r.exec_ticks)
        << "request " << r.request;
    EXPECT_GE(r.queue_wait_ticks, 0);
    EXPECT_GE(r.backoff_ticks, 0);
    EXPECT_GE(r.spike_ticks, 0);
    EXPECT_GE(r.exec_ticks, 0);
    saw_backoff |= r.backoff_ticks > 0;
    saw_spike |= r.spike_ticks > 0;
    TenantStats& t = sums[r.tenant];
    t.latency_ticks += r.latency_ticks;
    t.queue_wait_ticks += r.queue_wait_ticks;
    t.backoff_ticks += r.backoff_ticks;
    t.spike_ticks += r.spike_ticks;
    t.exec_ticks += r.exec_ticks;
  }
  // The fault plan injects retries and latency spikes; a breakdown that
  // never shows them would mean the attribution is dead code.
  EXPECT_TRUE(saw_backoff);
  EXPECT_TRUE(saw_spike);
  for (const auto& [tenant, ts] : run.tenants) {
    EXPECT_EQ(ts.latency_ticks, sums[tenant].latency_ticks) << tenant;
    EXPECT_EQ(ts.queue_wait_ticks, sums[tenant].queue_wait_ticks) << tenant;
    EXPECT_EQ(ts.backoff_ticks, sums[tenant].backoff_ticks) << tenant;
    EXPECT_EQ(ts.spike_ticks, sums[tenant].spike_ticks) << tenant;
    EXPECT_EQ(ts.exec_ticks, sums[tenant].exec_ticks) << tenant;
  }
}

TEST(Telemetry, TickSpansSumToTenantBreakdown) {
  const ArchSpec arch = test_arch();
  const Trace trace = overload_trace();
  std::vector<BitVector> streams;
  for (const TraceTaskKind& k : trace.kinds) {
    streams.push_back(make_stream(k.n_lut, k.grid, k.seed, arch, k.cluster));
  }
  telem::ScopedEnable on;
  telem::reset();
  const ServiceRun run = replay_faulted(trace, streams, arch, 1, "");
  const std::vector<telem::TraceEvent> ev = telem::take_trace();
  telem::reset();
  EXPECT_EQ(telem::check_event_pairing(ev), "");
  std::map<std::uint64_t, long long> request_ns;
  std::map<std::uint64_t, std::map<std::string, long long>> phase_ns;
  for (const telem::TraceEvent& e : ev) {
    if (e.pid != telem::kPidTicks) continue;
    EXPECT_EQ(e.phase, 'X');
    if (e.name == "request") {
      request_ns[e.tid] += static_cast<long long>(e.dur_ns);
    } else {
      phase_ns[e.tid][e.name] += static_cast<long long>(e.dur_ns);
    }
  }
  ASSERT_FALSE(request_ns.empty());
  for (const auto& [tenant, ts] : run.tenants) {
    const auto tid = static_cast<std::uint64_t>(tenant);
    EXPECT_EQ(request_ns[tid], ts.latency_ticks * 1000) << tenant;
    EXPECT_EQ(phase_ns[tid]["queue_wait"], ts.queue_wait_ticks * 1000);
    EXPECT_EQ(phase_ns[tid]["backoff"], ts.backoff_ticks * 1000);
    EXPECT_EQ(phase_ns[tid]["spike"], ts.spike_ticks * 1000);
    EXPECT_EQ(phase_ns[tid]["exec"], ts.exec_ticks * 1000);
  }
}

}  // namespace
}  // namespace vbs
