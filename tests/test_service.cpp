// Reconfiguration-service tests: decoded-stream cache, placement/eviction
// policies, trace generation/round-trip, batched async devirtualization,
// and the replay-determinism guarantee (byte-identical config_memory and
// eviction log at any thread count).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <set>

#include "flow/flow.h"
#include "netlist/generator.h"
#include "rtc/service/placement_policy.h"
#include "rtc/service/service.h"
#include "rtc/service/stream_cache.h"
#include "rtc/service/trace.h"
#include "vbs/encoder.h"

namespace vbs {
namespace {

BitVector make_stream(int n_lut, int grid, std::uint64_t seed,
                      const ArchSpec& arch, int cluster = 1) {
  GenParams p;
  p.n_lut = n_lut;
  p.n_pi = 3;
  p.n_po = 3;
  p.seed = seed;
  FlowOptions o;
  o.arch = arch;
  o.seed = seed;
  FlowResult r = run_flow(generate_netlist(p), grid, grid, o);
  EXPECT_TRUE(r.routed());
  EncodeOptions eo;
  eo.cluster = cluster;
  return serialize_vbs(encode_vbs(*r.fabric, r.netlist, r.packed, r.placement,
                                  r.routing.routes, eo));
}

ArchSpec test_arch() {
  ArchSpec arch;
  arch.chan_width = 8;
  return arch;
}

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("vbs_service_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

// --- content hash & cache ---------------------------------------------------

TEST(StreamHash, IdenticalContentSameHash) {
  const ArchSpec arch = test_arch();
  const BitVector a = make_stream(12, 4, 7, arch);
  const BitVector b = make_stream(12, 4, 7, arch);
  const BitVector c = make_stream(12, 4, 8, arch);
  EXPECT_EQ(a, b);
  EXPECT_EQ(stream_content_hash(a), stream_content_hash(b));
  EXPECT_NE(stream_content_hash(a), stream_content_hash(c));
}

std::shared_ptr<DecodedStream> fake_decoded(std::size_t payload_bits) {
  auto d = std::make_shared<DecodedStream>();
  d->payloads.emplace_back(payload_bits);
  return d;
}

TEST(DecodedStreamCache, LruEvictionRespectsCapacityAndTouch) {
  DecodedStreamCache cache(300);
  cache.insert(1, fake_decoded(100));
  cache.insert(2, fake_decoded(100));
  cache.insert(3, fake_decoded(100));
  EXPECT_EQ(cache.entries(), 3u);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_NE(cache.find(1), nullptr);
  cache.insert(4, fake_decoded(100));
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.find(2), nullptr);  // evicted
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
  EXPECT_NE(cache.find(4), nullptr);
  EXPECT_EQ(cache.size_bits(), 300u);
}

TEST(DecodedStreamCache, ZeroCapacityDisables) {
  DecodedStreamCache cache(0);
  cache.insert(1, fake_decoded(10));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_EQ(cache.insertions(), 0);
}

TEST(DecodedStreamCache, OversizedEntryNotCached) {
  DecodedStreamCache cache(50);
  cache.insert(1, fake_decoded(100));
  EXPECT_EQ(cache.entries(), 0u);
  cache.insert(2, fake_decoded(50));
  EXPECT_EQ(cache.entries(), 1u);
}

// --- placement policies -----------------------------------------------------

TEST(PlacementPolicy, FirstFitMatchesAllocatorScan) {
  RectAllocator a(10, 6);
  a.occupy({0, 0, 4, 6});
  const auto policy = make_placement_policy("first_fit");
  EXPECT_EQ(policy->place(a, 3, 3), a.find_free(3, 3));
  EXPECT_EQ(*policy->place(a, 3, 3), (Point{4, 0}));
}

TEST(PlacementPolicy, BestFitHugsOccupiedNeighbours) {
  RectAllocator a(10, 10);
  a.occupy({0, 0, 4, 4});
  const auto policy = make_placement_policy("best_fit");
  // The corner pocket right of the occupied block touches both the block
  // and the fabric edge: more contact than any open-field position.
  const auto p = policy->place(a, 3, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Point{4, 0}));
}

TEST(PlacementPolicy, SkylinePrefersLowestTopEdge) {
  RectAllocator a(10, 10);
  a.occupy({0, 0, 10, 2});  // a full band: everything must sit above it
  a.occupy({0, 2, 3, 3});
  const auto policy = make_placement_policy("skyline");
  const auto p = policy->place(a, 4, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Point{3, 2}));  // lowest available top edge, leftmost x
}

TEST(PlacementPolicy, SkylineIgnoresHolesBelowProfile) {
  RectAllocator a(6, 8);
  a.occupy({0, 0, 2, 4});
  a.occupy({4, 0, 2, 4});
  a.occupy({2, 3, 2, 1});  // bridge: a 2x3 hole is buried at (2,0)
  const auto sky = make_placement_policy("skyline");
  const auto ff = make_placement_policy("first_fit");
  // First fit reuses the buried hole; skyline only sees the profile and
  // rests on top of it — the defining difference between the two.
  EXPECT_EQ(*ff->place(a, 2, 2), (Point{2, 0}));
  EXPECT_EQ(*sky->place(a, 2, 2), (Point{0, 4}));
}

TEST(PlacementPolicy, UnknownNameThrows) {
  EXPECT_THROW(make_placement_policy("round_robin"), std::invalid_argument);
  for (const std::string& name : placement_policy_names()) {
    EXPECT_NE(make_placement_policy(name), nullptr);
  }
}

TEST(PlacementPolicy, EvictionPlanPrefersCheapestRegion) {
  RectAllocator a(12, 6);
  a.occupy({0, 0, 6, 6});   // big old task
  a.occupy({8, 0, 4, 4});   // small recent task
  const std::vector<VictimCandidate> tasks = {
      {1, {0, 0, 6, 6}, /*last_use=*/1},
      {2, {8, 0, 4, 4}, /*last_use=*/2},
  };
  // A 4x4 fits at (8,0)-ish only by evicting task 2 (area 16) — cheaper
  // than clearing the 6x6 (area 36) even though task 2 is more recent.
  const auto plan = plan_eviction(a, tasks, 4, 4);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->victims, (std::vector<int>{2}));
  // A fabric-wide request must take both, oldest first in the log order.
  const auto both = plan_eviction(a, tasks, 12, 6);
  ASSERT_TRUE(both.has_value());
  EXPECT_EQ(both->victims, (std::vector<int>{1, 2}));
  // Impossible footprint.
  EXPECT_FALSE(plan_eviction(a, tasks, 13, 2).has_value());
}

TEST(PlacementPolicy, EvictionPlanUsesFreeRegionWhenPossible) {
  RectAllocator a(12, 6);
  a.occupy({0, 0, 6, 6});
  const std::vector<VictimCandidate> tasks = {{1, {0, 0, 6, 6}, 1}};
  const auto plan = plan_eviction(a, tasks, 4, 4);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->victims.empty());  // the free half costs nothing
  EXPECT_TRUE(a.is_free({plan->origin.x, plan->origin.y, 4, 4}));
}

// --- traces -----------------------------------------------------------------

TEST(Trace, GenerationIsDeterministic) {
  TraceGenOptions opts;
  opts.pattern = ArrivalPattern::kBursty;
  opts.events = 80;
  const Trace a = generate_trace(opts);
  const Trace b = generate_trace(opts);
  EXPECT_EQ(a, b);
  opts.seed = 2;
  EXPECT_NE(generate_trace(opts), a);
}

TEST(Trace, AllPatternsProduceValidReferences) {
  for (const ArrivalPattern p :
       {ArrivalPattern::kSteady, ArrivalPattern::kBursty,
        ArrivalPattern::kDiurnal, ArrivalPattern::kChurn}) {
    TraceGenOptions opts;
    opts.pattern = p;
    opts.events = 120;
    const Trace t = generate_trace(opts);
    EXPECT_GT(t.events.size(), 20u) << to_string(p);
    int loads = 0;
    int last_tick = 0;
    for (std::size_t i = 0; i < t.events.size(); ++i) {
      const TraceEvent& e = t.events[i];
      EXPECT_GE(e.tick, last_tick);
      last_tick = e.tick;
      if (e.kind == TraceEvent::Kind::kLoad) {
        ++loads;
        ASSERT_GE(e.task_kind, 0);
        ASSERT_LT(e.task_kind, static_cast<int>(t.kinds.size()));
      } else {
        ASSERT_GE(e.ref, 0);
        ASSERT_LT(e.ref, static_cast<int>(i));
        EXPECT_EQ(t.events[static_cast<std::size_t>(e.ref)].kind,
                  TraceEvent::Kind::kLoad);
      }
    }
    EXPECT_GT(loads, 10) << to_string(p);
  }
}

TEST(Trace, TextRoundTrip) {
  TraceGenOptions opts;
  opts.pattern = ArrivalPattern::kChurn;
  opts.events = 60;
  const Trace t = generate_trace(opts);
  EXPECT_EQ(trace_from_string(trace_to_string(t)), t);
}

TEST(Trace, ParserDiagnosesBadInput) {
  EXPECT_THROW(trace_from_string("ev 0 load 0\n"), std::runtime_error);
  EXPECT_THROW(trace_from_string("fabric 4 4\nev 0 unload 0\n"),
               std::runtime_error);
  EXPECT_THROW(trace_from_string("fabric 4 4\nev 0 explode 1\n"),
               std::runtime_error);
  EXPECT_NO_THROW(trace_from_string("# comment\nfabric 4 4\n\n"));
}

// Every malformed line is rejected with a TraceError carrying the 1-based
// line number and the kBadTrace code — the parser trusts nothing.
TEST(Trace, BadLineMatrixReportsLineNumbers) {
  const std::string header =
      "trace t\nfabric 4 4\nkind a 5 3 1 1\n";  // lines 1-3
  const struct {
    const char* line;    ///< appended as line 4
    const char* reason;  ///< must appear in what()
  } bad[] = {
      {"fabric 0 4", "fabric dims"},
      {"fabric 4", "fabric needs"},
      {"fabric 4 4 9", "trailing"},
      {"kind b 0 3 1 1", "must be >= 1"},
      {"kind b 5 3 1", "kind needs"},
      {"kind b 5 3 1 1 1", "trailing"},
      {"ev -1 load 0", "tick"},
      {"ev 0 load 1", "out of range"},
      {"ev 0 load", "argument"},
      {"ev 0 unload 0", "earlier load"},
      {"ev 0 relocate 5", "earlier load"},
      {"ev 0 explode 0", "unknown event"},
      {"ev 0 load 0 -2", "tenant"},
      {"ev 0 load 0 1 junk", "trailing"},
      {"quux 1 2", "unknown record"},
  };
  for (const auto& c : bad) {
    try {
      trace_from_string(header + c.line + "\n");
      FAIL() << "accepted: " << c.line;
    } catch (const TraceError& e) {
      EXPECT_EQ(e.line(), 4) << c.line;
      EXPECT_EQ(e.code(), VbsErrc::kBadTrace) << c.line;
      EXPECT_NE(std::string(e.what()).find(c.reason), std::string::npos)
          << c.line << " -> " << e.what();
    }
  }
  // Non-monotone ticks: the violation is on line 5.
  try {
    trace_from_string(header + "ev 5 load 0\nev 4 load 0\n");
    FAIL() << "accepted non-monotone ticks";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.line(), 5);
    EXPECT_NE(std::string(e.what()).find("non-decreasing"),
              std::string::npos);
  }
  // A missing fabric record is diagnosed at end of input.
  EXPECT_THROW(trace_from_string("kind a 5 3 1 1\n"), TraceError);
  // The optional tenant column parses and round-trips.
  const Trace t = trace_from_string(header + "ev 0 load 0 2\nev 1 load 0\n");
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_EQ(t.events[0].tenant, 2);
  EXPECT_EQ(t.events[1].tenant, 0);
  EXPECT_EQ(trace_from_string(trace_to_string(t)), t);
}

TEST(Trace, AdversarialPatternsAreTwoTenant) {
  for (const ArrivalPattern p :
       {ArrivalPattern::kFlashCrowd, ArrivalPattern::kUniqueFlood}) {
    TraceGenOptions opts;
    opts.pattern = p;
    opts.events = 100;
    const Trace t = generate_trace(opts);
    EXPECT_EQ(generate_trace(opts), t) << to_string(p);  // deterministic
    int background = 0, flood = 0;
    std::set<int> flood_kinds;
    for (const TraceEvent& e : t.events) {
      (e.tenant == 0 ? background : flood)++;
      if (e.tenant == 1 && e.kind == TraceEvent::Kind::kLoad) {
        flood_kinds.insert(e.task_kind);
      }
    }
    EXPECT_GT(background, 0) << to_string(p);
    EXPECT_GT(flood, 0) << to_string(p);
    if (p == ArrivalPattern::kFlashCrowd) {
      // Everyone in the crowd wants the same hot content.
      EXPECT_EQ(flood_kinds.size(), 1u);
    } else {
      // Every flood load is brand-new content: cache-busting by design.
      EXPECT_EQ(flood_kinds.size(), static_cast<std::size_t>(flood));
    }
    EXPECT_EQ(trace_from_string(trace_to_string(t)), t) << to_string(p);
  }
}

// --- service ----------------------------------------------------------------

TEST(Service, BatchedLoadsMatchControllerAndDedupe) {
  const ArchSpec arch = test_arch();
  const BitVector s = make_stream(13, 4, 21, arch);
  ServiceOptions opts;
  opts.threads = 2;
  ReconfigService svc(arch, 8, 4, opts);
  svc.submit_load(s);
  svc.submit_load(s);  // same content, same batch
  const auto results = svc.drain();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, RequestStatus::kDone);
  EXPECT_EQ(results[1].status, RequestStatus::kDone);
  EXPECT_FALSE(results[0].cache_hit);
  EXPECT_TRUE(results[1].cache_hit);  // batch twin decoded once

  // Same fabric contents as the synchronous controller.
  ReconfigController ref(arch, 8, 4);
  ref.load_at(s, {0, 0});
  ref.load_at(s, {4, 0});
  EXPECT_EQ(svc.controller().config_memory(), ref.config_memory());
  EXPECT_EQ(svc.stats().warm_loads, 1);
  EXPECT_EQ(svc.stats().cold_loads, 1);
}

TEST(Service, WarmLoadSkipsDevirtualization) {
  const ArchSpec arch = test_arch();
  const BitVector s = make_stream(13, 4, 22, arch);
  ReconfigService svc(arch, 8, 8);
  const RequestId first = svc.submit_load(s);
  svc.drain();
  const long long cold_nodes = svc.stats().decode.nodes_expanded;
  ASSERT_GT(cold_nodes, 0);

  // Second load of the same content in a later drain: pure cache hit, the
  // acceptance bar (>= 10x fewer node expansions) is met with literal zero.
  svc.submit_load(s);
  const auto results = svc.drain();
  EXPECT_TRUE(results[0].cache_hit);
  EXPECT_EQ(svc.stats().decode.nodes_expanded, cold_nodes);
  EXPECT_GE(svc.cache().hits(), 1);

  // And the cached commit wrote the same bits a fresh decode would.
  ReconfigController ref(arch, 8, 8);
  ref.load_at(s, {0, 0});
  ref.load_at(s, {4, 0});
  EXPECT_EQ(svc.controller().config_memory(), ref.config_memory());
  (void)first;
}

TEST(Service, EvictToFitLogsVictims) {
  const ArchSpec arch = test_arch();
  const BitVector s = make_stream(21, 5, 23, arch);
  ServiceOptions opts;
  opts.evict_to_fit = true;
  ReconfigService svc(arch, 10, 5, opts);  // room for two 5x5 tasks
  const RequestId a = svc.submit_load(s);
  const RequestId b = svc.submit_load(s);
  const RequestId c = svc.submit_load(s);  // must evict the oldest
  const auto results = svc.drain();
  EXPECT_EQ(results[2].status, RequestStatus::kDone);
  EXPECT_EQ(results[2].evicted_tasks, 1);
  ASSERT_EQ(svc.eviction_log().size(), 1u);
  EXPECT_EQ(svc.eviction_log()[0].task, results[0].task);
  // The evicted task was the least recently used: request a's.
  EXPECT_EQ(svc.task_of(a), kNoTask);
  EXPECT_NE(svc.task_of(b), kNoTask);
  EXPECT_NE(svc.task_of(c), kNoTask);
  EXPECT_EQ(svc.eviction_log()[0].cause, c);
}

TEST(Service, RejectsWhenEvictionDisabledOrImpossible) {
  const ArchSpec arch = test_arch();
  const BitVector small = make_stream(13, 4, 24, arch);
  const BitVector big = make_stream(31, 6, 25, arch);
  ServiceOptions opts;
  opts.evict_to_fit = false;
  ReconfigService svc(arch, 5, 5, opts);
  svc.submit_load(small);
  svc.submit_load(small);  // no second 4x4 slot on a 5x5 chip
  svc.submit_load(big);    // 6x6 exceeds the fabric outright
  const auto results = svc.drain();
  EXPECT_EQ(results[0].status, RequestStatus::kDone);
  EXPECT_EQ(results[1].status, RequestStatus::kRejected);
  EXPECT_EQ(results[2].status, RequestStatus::kRejected);
  EXPECT_EQ(svc.stats().rejected, 2);
  EXPECT_TRUE(svc.eviction_log().empty());
}

TEST(Service, UnloadAndRelocateOfGoneTaskAreTolerated) {
  const ArchSpec arch = test_arch();
  const BitVector s = make_stream(13, 4, 26, arch);
  ReconfigService svc(arch, 8, 4);
  const RequestId load = svc.submit_load(s);
  const RequestId unload = svc.submit_unload(load);
  const RequestId again = svc.submit_unload(load);
  const RequestId move = svc.submit_relocate(load);
  const auto results = svc.drain();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].status, RequestStatus::kDone);
  EXPECT_EQ(results[1].status, RequestStatus::kDone);
  EXPECT_EQ(results[2].status, RequestStatus::kRejected);  // double unload
  EXPECT_EQ(results[3].status, RequestStatus::kRejected);  // gone task
  EXPECT_EQ(svc.controller().num_tasks(), 0);
  (void)unload;
  (void)again;
  (void)move;
}

TEST(Service, RelocateCopiesCachedPayload) {
  const ArchSpec arch = test_arch();
  const BitVector s = make_stream(13, 4, 27, arch, /*cluster=*/2);
  ReconfigService svc(arch, 12, 4);
  const RequestId load = svc.submit_load(s);
  svc.drain();
  const long long nodes_before = svc.stats().decode.nodes_expanded;
  svc.submit_relocate(load);
  const auto results = svc.drain();
  EXPECT_EQ(results[0].status, RequestStatus::kDone);
  // Moved somewhere, by copying cached payloads — no new decode work.
  EXPECT_EQ(svc.stats().relocates_cached, 1);
  EXPECT_EQ(svc.stats().decode.nodes_expanded, nodes_before);
  const TaskId id = svc.task_of(load);
  ASSERT_NE(id, kNoTask);
  // The moved configuration is a fresh decode's worth of bits.
  const Rect r = svc.controller().record(id).rect;
  ReconfigController ref(arch, 12, 4);
  ref.load_at(s, {r.x, r.y});
  EXPECT_EQ(svc.controller().config_memory(), ref.config_memory());
}

TEST(Service, UncachedRelocateRedecodesCorrectly) {
  const ArchSpec arch = test_arch();
  const BitVector s = make_stream(13, 4, 28, arch);
  ServiceOptions opts;
  opts.cache_capacity_bits = 0;  // every relocation is a cache miss
  ReconfigService svc(arch, 12, 4, opts);
  const RequestId load = svc.submit_load(s);
  svc.drain();
  const long long nodes = svc.stats().decode.nodes_expanded;
  svc.submit_relocate(load);
  const auto results = svc.drain();
  EXPECT_EQ(results[0].status, RequestStatus::kDone);
  EXPECT_EQ(svc.stats().relocates_decoded, 1);
  EXPECT_EQ(svc.stats().relocates_cached, 0);
  EXPECT_GT(svc.stats().decode.nodes_expanded, nodes);  // paid a re-decode
  const TaskId id = svc.task_of(load);
  ASSERT_NE(id, kNoTask);
  const Rect r = svc.controller().record(id).rect;
  ReconfigController ref(arch, 12, 4);
  ref.load_at(s, {r.x, r.y});
  EXPECT_EQ(svc.controller().config_memory(), ref.config_memory());
}

// --- trace replay determinism ----------------------------------------------

struct ReplayOutcome {
  BitVector config;
  std::vector<EvictionEvent> evictions;
  std::vector<int> statuses;          ///< per request, admission order
  std::vector<long long> latencies;   ///< modeled ticks, same order
  long long warm_loads = 0;
  long long decode_nodes = 0;
  long long shed = 0, deadline_misses = 0, retries = 0, faults = 0;
  long long now_ticks = 0;
};

ReplayOutcome replay(const Trace& trace,
                     const std::vector<BitVector>& kind_streams,
                     const ArchSpec& arch, int threads,
                     std::size_t cache_bits, ServiceOptions opts = {},
                     const std::string& journal_dir = {},
                     std::uint64_t* fingerprint_out = nullptr) {
  opts.threads = threads;
  opts.cache_capacity_bits = cache_bits;
  ReconfigService svc(arch, trace.fabric_w, trace.fabric_h, opts);
  if (!journal_dir.empty()) svc.open_journal(journal_dir);
  ReplayOutcome out;
  std::vector<RequestId> req_of_event(trace.events.size(), kNoRequest);
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& e = trace.events[i];
    switch (e.kind) {
      case TraceEvent::Kind::kLoad:
        req_of_event[i] = svc.submit_load(
            kind_streams[static_cast<std::size_t>(e.task_kind)], e.tenant);
        break;
      case TraceEvent::Kind::kUnload:
        req_of_event[i] = svc.submit_unload(
            req_of_event[static_cast<std::size_t>(e.ref)], e.tenant);
        break;
      case TraceEvent::Kind::kRelocate:
        req_of_event[i] = svc.submit_relocate(
            req_of_event[static_cast<std::size_t>(e.ref)], e.tenant);
        break;
    }
    // Drain at tick boundaries so batches match the bench's replay shape.
    if (i + 1 == trace.events.size() ||
        trace.events[i + 1].tick != e.tick) {
      for (const RequestResult& r : svc.drain()) {
        out.statuses.push_back(static_cast<int>(r.status));
        out.latencies.push_back(r.latency_ticks);
      }
    }
  }
  out.config = svc.controller().config_memory();
  out.evictions = svc.eviction_log();
  out.warm_loads = svc.stats().warm_loads;
  out.decode_nodes = svc.stats().decode.nodes_expanded;
  out.shed = svc.stats().shed;
  out.deadline_misses = svc.stats().deadline_misses;
  out.retries = svc.stats().retries;
  out.faults = svc.stats().faults_injected;
  out.now_ticks = svc.now_ticks();
  if (fingerprint_out != nullptr) *fingerprint_out = svc.state_fingerprint();
  return out;
}

void expect_same_outcome(const ReplayOutcome& a, const ReplayOutcome& b,
                         const char* what) {
  EXPECT_EQ(a.config, b.config) << what;
  ASSERT_EQ(a.evictions.size(), b.evictions.size()) << what;
  for (std::size_t i = 0; i < a.evictions.size(); ++i) {
    EXPECT_EQ(a.evictions[i].seq, b.evictions[i].seq) << what;
    EXPECT_EQ(a.evictions[i].task, b.evictions[i].task) << what;
    EXPECT_EQ(a.evictions[i].rect, b.evictions[i].rect) << what;
    EXPECT_EQ(a.evictions[i].cause, b.evictions[i].cause) << what;
  }
  EXPECT_EQ(a.statuses, b.statuses) << what;
  EXPECT_EQ(a.latencies, b.latencies) << what;
  EXPECT_EQ(a.shed, b.shed) << what;
  EXPECT_EQ(a.deadline_misses, b.deadline_misses) << what;
  EXPECT_EQ(a.retries, b.retries) << what;
  EXPECT_EQ(a.faults, b.faults) << what;
  EXPECT_EQ(a.now_ticks, b.now_ticks) << what;
}

TEST(Service, TraceReplayIsDeterministicAcrossThreadCounts) {
  const ArchSpec arch = test_arch();
  TraceGenOptions gopts;
  gopts.pattern = ArrivalPattern::kBursty;  // deepest batches
  gopts.events = 60;
  gopts.kinds = 3;
  gopts.fabric_w = 10;
  gopts.fabric_h = 8;
  const Trace trace = generate_trace(gopts);
  std::vector<BitVector> streams;
  for (const TraceTaskKind& k : trace.kinds) {
    streams.push_back(make_stream(k.n_lut, k.grid, k.seed, arch, k.cluster));
  }
  const std::size_t cache_bits = std::size_t{16} << 20;
  const ReplayOutcome serial = replay(trace, streams, arch, 1, cache_bits);
  EXPECT_GT(serial.warm_loads, 0);
  for (const int threads : {2, 8}) {
    const ReplayOutcome parallel =
        replay(trace, streams, arch, threads, cache_bits);
    expect_same_outcome(serial, parallel,
                        ("threads=" + std::to_string(threads)).c_str());
    EXPECT_EQ(serial.warm_loads, parallel.warm_loads);
    EXPECT_EQ(serial.decode_nodes, parallel.decode_nodes);
  }
  // A cold replay (cache disabled) redoes the decode work but must land on
  // the same configuration: cached payloads are real decodes.
  const ReplayOutcome cold = replay(trace, streams, arch, 2, 0);
  expect_same_outcome(serial, cold, "cold");
  EXPECT_GT(cold.decode_nodes, serial.decode_nodes);
}

// --- overload semantics: shedding, deadlines, retries, QoS ------------------

TEST(ServiceOverload, HigherPriorityPreemptsQueuedLoad) {
  const ArchSpec arch = test_arch();
  const BitVector s = make_stream(13, 4, 40, arch);
  ServiceOptions opts;
  opts.queue_limit = 1;
  ReconfigService svc(arch, 8, 4, opts);
  svc.set_tenant_priority(1, 10);
  const RequestId low = svc.submit_load(s, 0);
  const RequestId high = svc.submit_load(s, 1);  // full queue: low is shed
  const auto results = svc.drain();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].request, low);
  EXPECT_EQ(results[0].status, RequestStatus::kShed);
  EXPECT_EQ(results[0].code, VbsErrc::kQueueFull);
  EXPECT_EQ(results[1].request, high);
  EXPECT_EQ(results[1].status, RequestStatus::kDone);
  EXPECT_EQ(results[1].tenant, 1);
  EXPECT_EQ(results[1].priority, 10);
  // The shed load never touched the fabric.
  EXPECT_EQ(svc.task_of(low), kNoTask);
  EXPECT_EQ(svc.controller().num_tasks(), 1);
  EXPECT_EQ(svc.stats().shed, 1);
  EXPECT_EQ(svc.tenant_stats().at(0).shed, 1);
  EXPECT_EQ(svc.tenant_stats().at(1).done, 1);
}

TEST(ServiceOverload, EqualPriorityShedsTheArrivalButNeverUnloads) {
  const ArchSpec arch = test_arch();
  const BitVector s = make_stream(13, 4, 41, arch);
  ServiceOptions opts;
  opts.queue_limit = 1;
  ReconfigService svc(arch, 8, 4, opts);
  const RequestId a = svc.submit_load(s);
  const RequestId b = svc.submit_load(s);  // same priority: b itself is shed
  const RequestId u = svc.submit_unload(a);  // never shed: frees capacity
  const auto results = svc.drain();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status, RequestStatus::kDone);
  EXPECT_EQ(results[1].status, RequestStatus::kShed);
  EXPECT_EQ(results[2].status, RequestStatus::kDone);
  EXPECT_EQ(svc.controller().num_tasks(), 0);
  (void)b;
  (void)u;
}

TEST(ServiceOverload, DeadlineExpiresLateRequestsOnTheModeledClock) {
  const ArchSpec arch = test_arch();
  const BitVector s = make_stream(13, 4, 42, arch);
  ServiceOptions opts;
  opts.deadline_ticks = 1;
  ReconfigService svc(arch, 8, 4, opts);
  svc.submit_load(s);
  svc.submit_load(s);
  svc.submit_load(s);  // waits 2 ticks behind the first two: expired
  const auto results = svc.drain();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status, RequestStatus::kDone);
  EXPECT_EQ(results[0].latency_ticks, 1);
  EXPECT_EQ(results[1].status, RequestStatus::kDone);
  EXPECT_EQ(results[1].latency_ticks, 2);
  EXPECT_EQ(results[2].status, RequestStatus::kDeadline);
  EXPECT_EQ(results[2].code, VbsErrc::kDeadline);
  EXPECT_EQ(results[2].latency_ticks, 2);  // expired while waiting
  EXPECT_EQ(svc.stats().deadline_misses, 1);
  EXPECT_EQ(svc.tenant_stats().at(0).deadline_misses, 1);
  EXPECT_EQ(svc.now_ticks(), 2);
}

TEST(ServiceOverload, PermanentDecodeFaultExhaustsRetriesWithBackoff) {
  const ArchSpec arch = test_arch();
  const BitVector s = make_stream(13, 4, 43, arch);
  ServiceOptions opts;
  opts.cache_capacity_bits = 0;  // every attempt pays a fresh decode
  opts.retry_limit = 2;
  opts.retry_backoff_ticks = 1;
  FaultPlanConfig fcfg;
  fcfg.seed = 1;
  fcfg.decode_fail = 1.0;  // every attempt loses its decode
  opts.faults = FaultPlan(fcfg);
  ReconfigService svc(arch, 8, 4, opts);
  svc.submit_load(s);
  const auto results = svc.drain();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RequestStatus::kFailed);
  EXPECT_EQ(results[0].code, VbsErrc::kFaultInjected);
  EXPECT_EQ(results[0].attempts, 3);  // 1 + retry_limit
  // Backoff 1, then 2 ticks, plus one service tick per attempt.
  EXPECT_EQ(results[0].latency_ticks, 6);
  EXPECT_EQ(svc.stats().retries, 2);
  EXPECT_EQ(svc.stats().faults_injected, 3);
  EXPECT_EQ(svc.stats().failed, 1);
  EXPECT_EQ(svc.stats().loads, 1);  // retries are not new requests
  EXPECT_EQ(svc.controller().num_tasks(), 0);
  EXPECT_EQ(svc.tenant_stats().at(0).retries, 2);
  EXPECT_EQ(svc.tenant_stats().at(0).failed, 1);
}

TEST(ServiceOverload, TransientAllocFaultRecoversOnRetry) {
  const ArchSpec arch = test_arch();
  const BitVector s = make_stream(13, 4, 44, arch);
  // Find a plan whose first allocation roll fails and second succeeds; the
  // controller keys alloc faults off a serial per-load counter (0, 1, ...),
  // which this test pins down as part of the determinism contract.
  FaultPlanConfig fcfg;
  fcfg.alloc_fail = 0.5;
  for (fcfg.seed = 0;; ++fcfg.seed) {
    const FaultPlan probe(fcfg);
    if (probe.alloc_fails(0) && !probe.alloc_fails(1)) break;
  }
  ServiceOptions opts;
  opts.retry_limit = 2;
  opts.faults = FaultPlan(fcfg);
  ReconfigService svc(arch, 8, 4, opts);
  const RequestId id = svc.submit_load(s);
  const auto results = svc.drain();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RequestStatus::kDone);
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_EQ(svc.stats().retries, 1);
  EXPECT_EQ(svc.stats().faults_injected, 1);
  EXPECT_NE(svc.task_of(id), kNoTask);
  // The faulted first attempt rolled back completely before the retry.
  EXPECT_EQ(svc.controller().num_tasks(), 1);
}

TEST(ServiceOverload, FaultedTraceReplayIsDeterministicAcrossThreadCounts) {
  const ArchSpec arch = test_arch();
  TraceGenOptions gopts;
  gopts.pattern = ArrivalPattern::kBursty;
  gopts.events = 60;
  gopts.kinds = 3;
  gopts.fabric_w = 10;
  gopts.fabric_h = 8;
  const Trace trace = generate_trace(gopts);
  std::vector<BitVector> streams;
  for (const TraceTaskKind& k : trace.kinds) {
    streams.push_back(make_stream(k.n_lut, k.grid, k.seed, arch, k.cluster));
  }
  ServiceOptions fopts;
  fopts.queue_limit = 6;
  fopts.deadline_ticks = 10;
  fopts.retry_limit = 2;
  fopts.faults =
      FaultPlan::parse("seed=7,decode=0.2,alloc=0.1,cache=0.15,latency=0.2x5");
  const std::size_t cache_bits = std::size_t{16} << 20;
  const ReplayOutcome serial =
      replay(trace, streams, arch, 1, cache_bits, fopts);
  EXPECT_GT(serial.faults, 0);  // the plan actually fired
  for (const int threads : {2, 8}) {
    const ReplayOutcome parallel =
        replay(trace, streams, arch, threads, cache_bits, fopts);
    expect_same_outcome(serial, parallel,
                        ("faulted threads=" + std::to_string(threads)).c_str());
    EXPECT_EQ(serial.warm_loads, parallel.warm_loads);
    EXPECT_EQ(serial.decode_nodes, parallel.decode_nodes);
  }
}

TEST(ServiceOverload, RetryReleasedPastDeadlineCompletesDeadline) {
  const ArchSpec arch = test_arch();
  const BitVector s = make_stream(13, 4, 45, arch);
  ServiceOptions opts;
  opts.cache_capacity_bits = 0;
  opts.deadline_ticks = 2;
  opts.retry_limit = 3;
  opts.retry_backoff_ticks = 64;  // the backoff release lands past expiry
  FaultPlanConfig fcfg;
  fcfg.seed = 1;
  fcfg.decode_fail = 1.0;  // first attempt always faults into a retry
  opts.faults = FaultPlan(fcfg);
  for (const int threads : {1, 2, 8}) {
    opts.threads = threads;
    TempDir dir("retry_deadline_" + std::to_string(threads));
    ReconfigService svc(arch, 8, 4, opts);
    svc.open_journal(dir.path);
    const RequestId id = svc.submit_load(s);
    const auto results = svc.drain();
    ASSERT_EQ(results.size(), 1u);
    // The retry was scheduled, but its release tick is past the deadline:
    // the request must complete kDeadline — not burn the remaining retry
    // budget, and above all not half-commit.
    EXPECT_EQ(results[0].status, RequestStatus::kDeadline);
    EXPECT_EQ(results[0].code, VbsErrc::kDeadline);
    EXPECT_EQ(svc.stats().retries, 1);
    EXPECT_EQ(svc.stats().faults_injected, 1);
    EXPECT_EQ(svc.stats().deadline_misses, 1);
    EXPECT_EQ(svc.task_of(id), kNoTask);
    EXPECT_EQ(svc.controller().num_tasks(), 0);
    // The same terminal state reproduces from the journal alone.
    EXPECT_EQ(ReconfigService::recover(dir.path, threads)->state_fingerprint(),
              svc.state_fingerprint());
  }
}

TEST(ServiceOverload, JournaledFaultedRunRecoversIdenticallyAcrossThreads) {
  const ArchSpec arch = test_arch();
  TraceGenOptions gopts;
  gopts.pattern = ArrivalPattern::kBursty;
  gopts.events = 60;
  gopts.kinds = 3;
  gopts.fabric_w = 10;
  gopts.fabric_h = 8;
  const Trace trace = generate_trace(gopts);
  std::vector<BitVector> streams;
  for (const TraceTaskKind& k : trace.kinds) {
    streams.push_back(make_stream(k.n_lut, k.grid, k.seed, arch, k.cluster));
  }
  ServiceOptions fopts;
  fopts.queue_limit = 6;  // shedding active: kShed companion records too
  fopts.deadline_ticks = 10;
  fopts.retry_limit = 2;
  fopts.faults =
      FaultPlan::parse("seed=7,decode=0.2,alloc=0.1,cache=0.15,latency=0.2x5");
  const std::size_t cache_bits = std::size_t{16} << 20;
  std::vector<std::uint64_t> fps;
  for (const int threads : {1, 2, 8}) {
    TempDir dir("journal_recover_" + std::to_string(threads));
    std::uint64_t fp = 0;
    const ReplayOutcome out =
        replay(trace, streams, arch, threads, cache_bits, fopts, dir.path, &fp);
    EXPECT_GT(out.faults, 0) << "the model fault plan never fired";
    ReconfigService::RecoveryInfo info;
    const auto recovered = ReconfigService::recover(dir.path, threads, &info);
    EXPECT_EQ(recovered->state_fingerprint(), fp)
        << "recovery diverged at threads=" << threads;
    EXPECT_GT(info.admits, 0);
    EXPECT_GT(info.commits, 0);
    fps.push_back(fp);
  }
  // One durable history, one state: thread count changes neither.
  EXPECT_EQ(fps[0], fps[1]);
  EXPECT_EQ(fps[0], fps[2]);
}

}  // namespace
}  // namespace vbs
