// Cross-cutting property sweeps: the end-to-end pipeline invariant
// (encode -> wire -> decode -> electrical equivalence) must hold for every
// architecture configuration the library accepts, not just the paper's
// W=20/K=6 evaluation point.
#include <gtest/gtest.h>

#include <tuple>

#include "bitstream/bitstream.h"
#include "bitstream/connectivity.h"
#include "flow/flow.h"
#include "netlist/generator.h"
#include "vbs/devirtualizer.h"
#include "vbs/encoder.h"

namespace vbs {
namespace {

// (chan_width, lut_k, pattern, cluster)
using ArchPoint = std::tuple<int, int, SbPattern, int>;

class ArchSweep : public ::testing::TestWithParam<ArchPoint> {};

TEST_P(ArchSweep, PipelineInvariantHolds) {
  const auto [w, k, pattern, cluster] = GetParam();
  GenParams gp;
  gp.n_lut = 24;
  gp.n_pi = 3;
  gp.n_po = 3;
  gp.lut_k = k;
  gp.mean_fanin = std::min(3.0, k - 0.5);
  gp.seed = 1000 + static_cast<std::uint64_t>(w) * 10 + k;
  FlowOptions o;
  o.arch.chan_width = w;
  o.arch.lut_k = k;
  o.arch.sb_pattern = pattern;
  FlowResult r = run_flow(generate_netlist(gp), 6, 6, o);
  ASSERT_TRUE(r.routed()) << "W=" << w << " K=" << k;

  // Raw stream verifies.
  const BitVector raw = generate_raw_bitstream(*r.fabric, r.netlist, r.packed,
                                               r.placement, r.routing.routes);
  ASSERT_EQ(verify_connectivity(*r.fabric, raw, r.netlist, r.packed,
                                r.placement),
            "");

  // VBS round trip verifies, for both coding modes.
  for (const bool compact : {false, true}) {
    EncodeOptions eo;
    eo.cluster = cluster;
    eo.compact_fanout = compact;
    EncodeStats stats;
    const VbsImage img = encode_vbs(*r.fabric, r.netlist, r.packed,
                                    r.placement, r.routing.routes, eo, &stats);
    const BitVector decoded = devirtualize_image(
        deserialize_vbs(serialize_vbs(img)), *r.fabric, {0, 0});
    EXPECT_EQ(verify_connectivity(*r.fabric, decoded, r.netlist, r.packed,
                                  r.placement),
              "")
        << "W=" << w << " K=" << k << " cluster=" << cluster
        << " compact=" << compact;
    EXPECT_LE(stats.vbs_bits, stats.raw_bits + stats.entries + 64u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ArchSweep,
    ::testing::Combine(::testing::Values(5, 8, 12),
                       ::testing::Values(4, 6),
                       ::testing::Values(SbPattern::kDisjoint,
                                         SbPattern::kWilton),
                       ::testing::Values(1, 2, 3)));

class SeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedProperty, RawAndDecodedInterfaceAgreesAtRegionBoundaries) {
  // Stronger check than verify_connectivity alone: the decoded image's
  // electrical classes must agree with the *original router's* image on
  // every wire crossing a decode-region boundary — the interface contract
  // that lets neighbouring regions decode independently. (Wires interior
  // to a region are free: the online router may realize a different but
  // equivalent internal path.)
  GenParams gp;
  gp.n_lut = 30;
  gp.seed = GetParam();
  FlowOptions o;
  o.arch.chan_width = 8;
  FlowResult r = run_flow(generate_netlist(gp), 7, 7, o);
  ASSERT_TRUE(r.routed());
  const BitVector raw = generate_raw_bitstream(*r.fabric, r.netlist, r.packed,
                                               r.placement, r.routing.routes);
  const RouteRequest req =
      build_route_request(*r.fabric, r.netlist, r.packed, r.placement);

  for (const int cluster : {1, 2, 3}) {
    EncodeOptions eo;
    eo.cluster = cluster;
    const VbsImage img = encode_vbs(*r.fabric, r.netlist, r.packed,
                                    r.placement, r.routing.routes, eo);
    const BitVector dec = devirtualize_image(img, *r.fabric, {0, 0});

    const Connectivity ca(*r.fabric, raw);
    const Connectivity cb(*r.fabric, dec);
    std::map<int, int> net_of_a, net_of_b;
    for (std::size_t n = 0; n < req.nets.size(); ++n) {
      net_of_a[ca.root(req.nets[n].source)] = static_cast<int>(n);
      net_of_b[cb.root(req.nets[n].source)] = static_cast<int>(n);
    }
    auto net_at = [&](const Connectivity& c, std::map<int, int>& net_of,
                      int node) {
      const auto it = net_of.find(c.root(node));
      return it == net_of.end() ? -1 : it->second;
    };
    const MacroModel& mm = r.fabric->macro();
    const int w = r.fabric->spec().chan_width;
    for (int my = 0; my < 7; ++my) {
      for (int mx = 0; mx < 7; ++mx) {
        for (int port = 0; port < mm.num_ports(); ++port) {
          // Keep only wires on a region-boundary side of this tile (pins
          // and region-interior wires are not part of the contract).
          if (port >= 4 * w) continue;
          const auto side = static_cast<Side>(port / w);
          const bool on_boundary =
              (side == Side::kWest && mx % cluster == 0) ||
              (side == Side::kEast && (mx + 1) % cluster == 0) ||
              (side == Side::kSouth && my % cluster == 0) ||
              (side == Side::kNorth && (my + 1) % cluster == 0);
          if (!on_boundary) continue;
          const int g = r.fabric->port_global(mx, my, port);
          EXPECT_EQ(net_at(ca, net_of_a, g), net_at(cb, net_of_b, g))
              << "cluster " << cluster << " tile " << mx << "," << my
              << " port " << port;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedProperty, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace vbs
