// FlowPipeline and artifact-I/O tests: per-stage artifact round trips,
// container corruption/version/fingerprint rejection, lazy stage execution
// and invalidation, and the bit-exact resume contract — checkpointing
// after any prefix and resuming must reproduce the uninterrupted flow's
// placements, routing trees, stats and final VBS bytes byte for byte, at
// any thread count, across the 5-circuit perf suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "flow/artifact_io.h"
#include "flow/flow.h"
#include "flow/pipeline.h"
#include "netlist/generator.h"
#include "netlist/mcnc.h"
#include "util/fault.h"
#include "util/io.h"
#include "vbs/encoder.h"

namespace vbs {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("vbs_pipeline_" + tag + "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

Netlist small_netlist(std::uint64_t seed = 11) {
  GenParams p;
  p.n_lut = 30;
  p.n_pi = 6;
  p.n_po = 6;
  p.seed = seed;
  return generate_netlist(p);
}

FlowOptions small_opts() {
  FlowOptions o;
  o.arch.chan_width = 8;
  o.seed = 5;
  return o;
}

void expect_identical_placement(const Placement& a, const Placement& b) {
  EXPECT_EQ(a.grid_w, b.grid_w);
  EXPECT_EQ(a.grid_h, b.grid_h);
  EXPECT_EQ(a.lut_loc, b.lut_loc);
  ASSERT_EQ(a.io_loc.size(), b.io_loc.size());
  for (std::size_t i = 0; i < a.io_loc.size(); ++i) {
    EXPECT_EQ(a.io_loc[i], b.io_loc[i]) << "I/O " << i;
  }
}

void expect_identical_routing(const RoutingResult& a, const RoutingResult& b) {
  ASSERT_EQ(a.success, b.success);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.heap_pops, b.heap_pops);
  EXPECT_EQ(a.bbox_retries, b.bbox_retries);
  EXPECT_EQ(a.total_wire_nodes, b.total_wire_nodes);
  EXPECT_EQ(a.overused_nodes, b.overused_nodes);
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t n = 0; n < a.routes.size(); ++n) {
    const auto& ra = a.routes[n].nodes;
    const auto& rb = b.routes[n].nodes;
    ASSERT_EQ(ra.size(), rb.size()) << "net " << n;
    for (std::size_t k = 0; k < ra.size(); ++k) {
      EXPECT_EQ(ra[k].rr, rb[k].rr) << "net " << n << " node " << k;
      EXPECT_EQ(ra[k].parent, rb[k].parent) << "net " << n << " node " << k;
      EXPECT_EQ(ra[k].fabric_edge, rb[k].fabric_edge)
          << "net " << n << " node " << k;
    }
  }
}

// --- artifact payload round trips -------------------------------------------

TEST(ArtifactIo, PackedRoundTripsByteExact) {
  const Netlist nl = small_netlist();
  ArchSpec spec;
  spec.chan_width = 8;
  const PackedDesign pd = pack_netlist(nl, spec);
  const BitVector bits = serialize_packed(pd);
  const PackedDesign back = deserialize_packed(bits);
  EXPECT_EQ(back.luts, pd.luts);
  EXPECT_EQ(back.ios, pd.ios);
  EXPECT_EQ(back.lut_pins, pd.lut_pins);
  EXPECT_EQ(serialize_packed(back), bits);  // byte equality both ways
}

TEST(ArtifactIo, PlacementRoundTripsByteExact) {
  const Netlist nl = small_netlist();
  ArchSpec spec;
  spec.chan_width = 8;
  const PackedDesign pd = pack_netlist(nl, spec);
  PlaceOptions popts;
  popts.seed = 5;
  PlaceStats stats;
  const Placement pl = place_design(nl, pd, spec, 7, 7, popts, &stats);
  const BitVector bits = serialize_placement(pl, stats);
  Placement back;
  PlaceStats back_stats;
  deserialize_placement(bits, &back, &back_stats);
  expect_identical_placement(back, pl);
  EXPECT_EQ(back_stats.initial_cost, stats.initial_cost);
  EXPECT_EQ(back_stats.final_cost, stats.final_cost);
  EXPECT_EQ(back_stats.moves, stats.moves);
  EXPECT_EQ(back_stats.accepted, stats.accepted);
  EXPECT_EQ(back_stats.temperatures, stats.temperatures);
  EXPECT_EQ(back_stats.cost_drift, stats.cost_drift);
  EXPECT_EQ(serialize_placement(back, back_stats), bits);
}

TEST(ArtifactIo, RoutingRoundTripsByteExact) {
  FlowResult r = run_flow(small_netlist(), 7, 7, small_opts());
  ASSERT_TRUE(r.routed());
  const BitVector bits = serialize_routing(r.routing);
  const RoutingResult back = deserialize_routing(bits);
  expect_identical_routing(back, r.routing);
  EXPECT_EQ(serialize_routing(back), bits);
}

// --- container rejection -----------------------------------------------------

TEST(ArtifactIo, FileRoundTripAndRejection) {
  TempDir dir("artifact");
  fs::create_directories(dir.path);
  const std::string path = dir.path + "/test.art";
  BitVector payload;
  payload.append_bits(0xdeadbeefcafe, 48);
  write_artifact_file(path, ArtifactStage::kPack, 42, payload);

  const std::uint64_t good_fp = 42;
  EXPECT_EQ(read_artifact_file(path, ArtifactStage::kPack, &good_fp), payload);

  // Wrong expected stage tag.
  EXPECT_THROW(read_artifact_file(path, ArtifactStage::kRoute, &good_fp),
               ArtifactError);
  // Fingerprint mismatch (stale / foreign checkpoint).
  const std::uint64_t bad_fp = 43;
  EXPECT_THROW(read_artifact_file(path, ArtifactStage::kPack, &bad_fp),
               ArtifactError);

  const auto read_bytes = [&] {
    std::ifstream is(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is), {});
  };
  const auto write_bytes = [&](const std::string& bytes) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  const std::string original = read_bytes();

  // Version/magic mismatch: a future "VAR2" file must be rejected.
  std::string bad = original;
  bad[3] = '2';
  write_bytes(bad);
  EXPECT_THROW(read_artifact_file(path, ArtifactStage::kPack, &good_fp),
               ArtifactError);

  // Corrupted payload: content hash catches a flipped byte.
  bad = original;
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0x40);
  write_bytes(bad);
  EXPECT_THROW(read_artifact_file(path, ArtifactStage::kPack, &good_fp),
               ArtifactError);

  // Truncated payload and truncated header.
  write_bytes(original.substr(0, original.size() - 2));
  EXPECT_THROW(read_artifact_file(path, ArtifactStage::kPack, &good_fp),
               ArtifactError);
  write_bytes(original.substr(0, 10));
  EXPECT_THROW(read_artifact_file(path, ArtifactStage::kPack, &good_fp),
               ArtifactError);
}

// Systematic single-bit corruption of the whole vbs.artifact.v1 header
// (magic, stage, fingerprint, content hash, bit count — 29 bytes): every
// one of the 232 possible flips must be caught by a typed ArtifactError.
// No header bit is slack; none silently decodes to garbage.
TEST(ArtifactIo, EveryHeaderBitFlipIsRejected) {
  TempDir dir("artifact_flip");
  fs::create_directories(dir.path);
  const std::string path = dir.path + "/flip.art";
  BitVector payload;
  payload.append_bits(0xdeadbeefcafe, 48);
  payload.append_bits(0x123456789, 33);  // odd length: padding in play
  write_artifact_file(path, ArtifactStage::kPack, 42, payload);
  const std::uint64_t good_fp = 42;
  ASSERT_EQ(read_artifact_file(path, ArtifactStage::kPack, &good_fp), payload);

  std::string original;
  {
    std::ifstream is(path, std::ios::binary);
    original.assign(std::istreambuf_iterator<char>(is), {});
  }
  constexpr std::size_t kHeaderBytes = 29;
  ASSERT_GT(original.size(), kHeaderBytes);
  for (std::size_t byte = 0; byte < kHeaderBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = original;
      bad[byte] = static_cast<char>(bad[byte] ^ (1u << bit));
      {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(bad.data(), static_cast<std::streamsize>(bad.size()));
      }
      try {
        read_artifact_file(path, ArtifactStage::kPack, &good_fp);
        FAIL() << "header byte " << byte << " bit " << bit
               << " flip was accepted";
      } catch (const ArtifactError&) {
        // Typed rejection: exactly what the contract requires.
      }
    }
  }
}

// --- pipeline semantics ------------------------------------------------------

TEST(Pipeline, StagesRunLazilyAndObserversReport) {
  FlowPipeline pipe(small_netlist(), 7, 7, small_opts());
  std::vector<Stage> seen;
  pipe.add_observer([&](const FlowPipeline&, const StageReport& r) {
    seen.push_back(r.stage);
  });
  EXPECT_FALSE(pipe.completed(Stage::kPack));
  pipe.run_to(Stage::kPlace);
  EXPECT_TRUE(pipe.completed(Stage::kPack));
  EXPECT_TRUE(pipe.completed(Stage::kPlace));
  EXPECT_FALSE(pipe.completed(Stage::kRoute));
  // Accessors run their producing stage on demand.
  EXPECT_TRUE(pipe.routing().success);
  EXPECT_TRUE(pipe.completed(Stage::kRoute));
  EXPECT_GT(pipe.vbs_stream().size(), 0u);
  EXPECT_TRUE(pipe.completed(Stage::kEncode));
  EXPECT_EQ(seen, (std::vector<Stage>{Stage::kPack, Stage::kPlace,
                                      Stage::kRoute, Stage::kEncode}));
}

TEST(Pipeline, RerunFromInvalidatesOnlyDownstream) {
  FlowPipeline pipe(small_netlist(), 7, 7, small_opts());
  pipe.run_to(Stage::kEncode);
  const Placement before_place = pipe.placement();
  const RoutingResult before_route = pipe.routing();
  const BitVector before_stream = pipe.vbs_stream();

  int place_runs = 0, route_runs = 0;
  pipe.add_observer([&](const FlowPipeline&, const StageReport& r) {
    place_runs += r.stage == Stage::kPlace;
    route_runs += r.stage == Stage::kRoute;
    EXPECT_TRUE(r.rerun);  // everything ran once already
  });
  pipe.rerun_from(Stage::kRoute);
  EXPECT_EQ(place_runs, 0) << "upstream placement must stay frozen";
  EXPECT_EQ(route_runs, 1);
  EXPECT_TRUE(pipe.completed(Stage::kEncode)) << "encode had run: rerun too";
  // Deterministic engines: the rerun reproduces the first run exactly.
  expect_identical_placement(pipe.placement(), before_place);
  expect_identical_routing(pipe.routing(), before_route);
  EXPECT_EQ(pipe.vbs_stream(), before_stream);
}

TEST(Pipeline, MatchesRunFlow) {
  const Netlist nl = small_netlist();
  const FlowOptions opts = small_opts();
  FlowResult direct = run_flow(nl, 7, 7, opts);
  ASSERT_TRUE(direct.routed());
  FlowPipeline pipe(nl, 7, 7, opts);
  expect_identical_placement(pipe.placement(), direct.placement);
  expect_identical_routing(pipe.routing(), direct.routing);
  // And the legacy conversion gives back the same shape.
  FlowResult converted = std::move(pipe).take_flow_result();
  expect_identical_routing(converted.routing, direct.routing);
  ASSERT_NE(converted.fabric, nullptr);
  EXPECT_EQ(converted.fabric->width(), 7);
}

TEST(Pipeline, EncodeThrowsOnUnroutedDesign) {
  GenParams p;
  p.n_lut = 90;
  p.n_pi = 8;
  p.n_po = 8;
  p.seed = 3;
  FlowOptions o;
  o.arch.chan_width = 3;  // far below feasible
  o.route.max_iterations = 5;
  FlowPipeline pipe(generate_netlist(p), 10, 10, o);
  pipe.run_to(Stage::kRoute);
  EXPECT_FALSE(pipe.routing().success);
  EXPECT_THROW(pipe.run_to(Stage::kEncode), std::runtime_error);
}

// --- checkpoint / resume -----------------------------------------------------

TEST(Pipeline, ResumeRejectsForeignArtifacts) {
  TempDir dir_a("ckpt_a");
  TempDir dir_b("ckpt_b");
  FlowOptions opts_a = small_opts();
  FlowOptions opts_b = small_opts();
  opts_b.seed = opts_a.seed + 1;  // different placement seed
  FlowPipeline a(small_netlist(), 7, 7, opts_a);
  a.run_to(Stage::kPlace);
  a.save_checkpoint(dir_a.path);
  FlowPipeline b(small_netlist(), 7, 7, opts_b);
  b.run_to(Stage::kPlace);
  b.save_checkpoint(dir_b.path);

  // A clean resume works...
  EXPECT_TRUE(FlowPipeline::resume_from(dir_a.path).completed(Stage::kPlace));
  // ...but a place artifact produced under another seed is rejected by its
  // fingerprint, even though the file itself is intact.
  fs::copy_file(fs::path(dir_b.path) / "place.art",
                fs::path(dir_a.path) / "place.art",
                fs::copy_options::overwrite_existing);
  EXPECT_THROW(FlowPipeline::resume_from(dir_a.path), ArtifactError);
}

TEST(Pipeline, SaveDropsStaleDownstreamArtifacts) {
  TempDir dir("ckpt_stale");
  FlowPipeline pipe(small_netlist(), 7, 7, small_opts());
  pipe.run_to(Stage::kEncode);
  pipe.save_checkpoint(dir.path);
  EXPECT_TRUE(fs::exists(fs::path(dir.path) / "route.art"));
  // Saving only the pack+place prefix must remove the deeper artifacts, so
  // a reused directory never mixes checkpoint generations.
  pipe.save_checkpoint(dir.path, Stage::kPlace);
  EXPECT_TRUE(fs::exists(fs::path(dir.path) / "place.art"));
  EXPECT_FALSE(fs::exists(fs::path(dir.path) / "route.art"));
  EXPECT_FALSE(fs::exists(fs::path(dir.path) / "encode.art"));
  FlowPipeline re = FlowPipeline::resume_from(dir.path);
  EXPECT_TRUE(re.completed(Stage::kPlace));
  EXPECT_FALSE(re.completed(Stage::kRoute));
}

bool has_tmp_files(const std::string& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".tmp") return true;
  }
  return false;
}

TEST(Pipeline, CheckpointSurvivesCrashAtEveryIoSite) {
  TempDir dir("ckpt_crash");
  FlowPipeline pipe(small_netlist(), 7, 7, small_opts());
  pipe.run_to(Stage::kPlace);
  pipe.save_checkpoint(dir.path);  // the old generation on disk
  pipe.run_to(Stage::kEncode);

  // Kill the deeper re-save at its Nth I/O operation, for every N. After
  // each kill the directory must still resume — to at least the old
  // generation's prefix (atomic replacement: a half-written artifact is
  // never visible under its final name) — and resume sweeps the orphaned
  // "*.tmp" the crash left behind.
  long long kills = 0;
  for (long long n = 0;; ++n) {
    const FaultPlan plan = FaultPlan::parse("crash=" + std::to_string(n));
    IoFaultInjector inj(&plan);
    bool crashed = false;
    try {
      ScopedIoFaults scope(&inj);
      pipe.save_checkpoint(dir.path);
    } catch (const CrashInjected&) {
      crashed = true;
      ++kills;
    }
    if (!crashed) break;  // past the last I/O op: the save completed
    FlowPipeline re = FlowPipeline::resume_from(dir.path);
    EXPECT_TRUE(re.completed(Stage::kPlace)) << "killed at io op " << n;
    EXPECT_FALSE(has_tmp_files(dir.path)) << "killed at io op " << n;
  }
  EXPECT_GT(kills, 3);  // the save really has several distinct crash sites
  FlowPipeline re = FlowPipeline::resume_from(dir.path);
  EXPECT_TRUE(re.completed(Stage::kEncode));
  EXPECT_EQ(re.vbs_stream(), pipe.vbs_stream());
}

// The acceptance bar of the redesign: for every circuit of the perf suite,
// checkpointing after pack/place/route and resuming produces placements,
// routing trees, stats and final VBS bytes identical to the uninterrupted
// run — pipeline vs run_flow, at threads 1 and 8, and rerun_from(route) on
// a loaded placement matches the full flow's routing byte for byte.
TEST(Pipeline, ResumeIsBitExactAcrossSuite) {
  std::vector<McncCircuit> cs = mcnc20();
  std::sort(cs.begin(), cs.end(),
            [](const McncCircuit& a, const McncCircuit& b) {
              return a.lbs < b.lbs;
            });
  cs.resize(5);
  for (const McncCircuit& c : cs) {
    SCOPED_TRACE(c.name);
    const Netlist nl = make_mcnc_like(c, 1);
    FlowOptions opts;
    opts.arch.chan_width = 20;
    opts.seed = 1;
    opts.place.effort = 0.25;  // resume identity is under test, not quality
    BitVector ref_stream;      // thread-1 stream; all legs must match it
    for (const int threads : {1, 8}) {
      SCOPED_TRACE(threads);
      opts.threads = threads;
      FlowResult direct = run_flow(nl, c.size, c.size, opts);
      ASSERT_TRUE(direct.routed());

      TempDir dir("suite_" + c.name + "_t" + std::to_string(threads));
      // Stage by stage with a save/resume round trip at every boundary:
      // the remainder after each resume must reproduce the direct run.
      FlowPipeline p0(nl, c.size, c.size, opts);
      p0.run_to(Stage::kPack);
      p0.save_checkpoint(dir.path);

      FlowPipeline p1 = FlowPipeline::resume_from(dir.path);
      EXPECT_TRUE(p1.completed(Stage::kPack));
      EXPECT_FALSE(p1.completed(Stage::kPlace));
      p1.run_to(Stage::kPlace);
      expect_identical_placement(p1.placement(), direct.placement);
      const PlaceStats run_stats = p1.place_stats();
      p1.save_checkpoint(dir.path);

      FlowPipeline p2 = FlowPipeline::resume_from(dir.path);
      EXPECT_TRUE(p2.completed(Stage::kPlace));
      // rerun_from(route) on the loaded, frozen placement == full flow.
      p2.rerun_from(Stage::kRoute);
      expect_identical_routing(p2.routing(), direct.routing);
      p2.save_checkpoint(dir.path);

      FlowPipeline p3 = FlowPipeline::resume_from(dir.path);
      EXPECT_TRUE(p3.completed(Stage::kRoute));
      expect_identical_placement(p3.placement(), direct.placement);
      expect_identical_routing(p3.routing(), direct.routing);
      const BitVector& stream = p3.vbs_stream();
      ASSERT_GT(stream.size(), 0u);
      if (ref_stream.empty()) {
        ref_stream = stream;
      } else {
        EXPECT_EQ(stream, ref_stream)
            << "final VBS bytes must be thread-count invariant";
      }
      // The deterministic place stats survive the checkpoint chain.
      EXPECT_EQ(p3.place_stats().moves, run_stats.moves);
      EXPECT_EQ(p3.place_stats().accepted, run_stats.accepted);
      EXPECT_EQ(p3.place_stats().final_cost, run_stats.final_cost);
      EXPECT_EQ(p3.place_stats().cost_drift, run_stats.cost_drift);
    }
  }
}

}  // namespace
}  // namespace vbs
