// RPC server tests: loopback end-to-end traffic, handshake auth,
// per-tenant session isolation, admission control under overload, the
// closed-loop load generator, hostile-socket fault schedules, remote
// shutdown — and the headline determinism contract: a journaled server
// replaying a trace over the wire lands on a state fingerprint identical
// to the offline replay of the same trace, before AND after recovery.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>
#include <thread>

#include "flow/flow.h"
#include "netlist/generator.h"
#include "rtc/server/client.h"
#include "rtc/server/server.h"
#include "rtc/service/trace.h"
#include "vbs/encoder.h"

namespace vbs {
namespace {

BitVector make_stream(int n_lut, int grid, std::uint64_t seed,
                      const ArchSpec& arch, int cluster = 1) {
  GenParams p;
  p.n_lut = n_lut;
  p.n_pi = 3;
  p.n_po = 3;
  p.seed = seed;
  FlowOptions o;
  o.arch = arch;
  o.seed = seed;
  FlowResult r = run_flow(generate_netlist(p), grid, grid, o);
  EXPECT_TRUE(r.routed());
  EncodeOptions eo;
  eo.cluster = cluster;
  return serialize_vbs(encode_vbs(*r.fabric, r.netlist, r.packed, r.placement,
                                  r.routing.routes, eo));
}

ArchSpec test_arch() {
  ArchSpec arch;
  arch.chan_width = 8;
  return arch;
}

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("vbs_server_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

/// The shared replay workload: a small bursty trace plus its streams.
struct Workload {
  Trace trace;
  std::vector<BitVector> streams;
  ArchSpec arch = test_arch();
};

const Workload& workload() {
  static const Workload* w = [] {
    auto* wl = new Workload;
    TraceGenOptions gopts;
    gopts.pattern = ArrivalPattern::kBursty;
    gopts.events = 36;
    gopts.ticks = 24;
    gopts.kinds = 3;
    gopts.fabric_w = 10;
    gopts.fabric_h = 8;
    wl->trace = generate_trace(gopts);
    for (const TraceTaskKind& k : wl->trace.kinds) {
      wl->streams.push_back(
          make_stream(k.n_lut, k.grid, k.seed, wl->arch, k.cluster));
    }
    return wl;
  }();
  return *w;
}

ServiceOptions replay_service_options() {
  ServiceOptions o;
  o.threads = 2;
  o.queue_limit = 8;
  o.deadline_ticks = 12;
  return o;
}

const std::map<int, int> kPriorities = {{0, 10}, {1, 0}};

/// Offline reference: submit each tick group, drain at the group
/// boundary — exactly the sequence the admin wire replay produces.
std::uint64_t offline_replay(ReconfigService& svc,
                             std::vector<RequestResult>* results_out) {
  const Workload& w = workload();
  for (const auto& [tenant, prio] : kPriorities) {
    svc.set_tenant_priority(tenant, prio);
  }
  std::map<int, RequestId> id_of_event;
  std::size_t i = 0;
  while (i < w.trace.events.size()) {
    const int tick = w.trace.events[i].tick;
    while (i < w.trace.events.size() && w.trace.events[i].tick == tick) {
      const TraceEvent& ev = w.trace.events[i];
      RequestId id = kNoRequest;
      switch (ev.kind) {
        case TraceEvent::Kind::kLoad:
          id = svc.submit_load(w.streams[static_cast<std::size_t>(ev.task_kind)],
                               ev.tenant);
          break;
        case TraceEvent::Kind::kUnload: {
          const auto it = id_of_event.find(ev.ref);
          id = svc.submit_unload(
              it == id_of_event.end() ? kNoRequest : it->second, ev.tenant);
          break;
        }
        case TraceEvent::Kind::kRelocate: {
          const auto it = id_of_event.find(ev.ref);
          id = svc.submit_relocate(
              it == id_of_event.end() ? kNoRequest : it->second, ev.tenant);
          break;
        }
      }
      id_of_event[static_cast<int>(i)] = id;
      ++i;
    }
    auto results = svc.drain();
    if (results_out) {
      results_out->insert(results_out->end(), results.begin(), results.end());
    }
  }
  return svc.state_fingerprint();
}

/// Wire replay through an admin session: same submits, a DRAIN frame per
/// tick group.
std::vector<RequestResult> wire_replay(rpc::RpcClient& admin) {
  const Workload& w = workload();
  for (const auto& [tenant, prio] : kPriorities) {
    admin.set_priority(tenant, prio);
  }
  std::vector<RequestResult> all;
  std::map<int, RequestId> id_of_event;
  std::size_t i = 0;
  while (i < w.trace.events.size()) {
    const int tick = w.trace.events[i].tick;
    while (i < w.trace.events.size() && w.trace.events[i].tick == tick) {
      const TraceEvent& ev = w.trace.events[i];
      RequestId id = kNoRequest;
      switch (ev.kind) {
        case TraceEvent::Kind::kLoad:
          id = admin.send_load(
              w.streams[static_cast<std::size_t>(ev.task_kind)], ev.tenant);
          break;
        case TraceEvent::Kind::kUnload: {
          const auto it = id_of_event.find(ev.ref);
          id = admin.send_unload(
              it == id_of_event.end() ? kNoRequest : it->second, ev.tenant);
          break;
        }
        case TraceEvent::Kind::kRelocate: {
          const auto it = id_of_event.find(ev.ref);
          id = admin.send_relocate(
              it == id_of_event.end() ? kNoRequest : it->second, ev.tenant);
          break;
        }
      }
      id_of_event[static_cast<int>(i)] = id;
      ++i;
    }
    const auto results = admin.drain();
    all.insert(all.end(), results.begin(), results.end());
  }
  return all;
}

rpc::RpcClientOptions client_opts(int port, int tenant,
                                  std::uint64_t auth_seed = 1) {
  rpc::RpcClientOptions o;
  o.port = port;
  o.tenant = tenant;
  o.auth_seed = auth_seed;
  return o;
}

// --- basics ------------------------------------------------------------------

TEST(Server, StartPingStatStop) {
  const Workload& w = workload();
  ReconfigService svc(w.arch, w.trace.fabric_w, w.trace.fabric_h,
                      replay_service_options());
  rpc::RpcServerOptions sopts;
  rpc::RpcServer server(&svc, sopts);
  const int port = server.start();
  ASSERT_GT(port, 0);
  {
    rpc::RpcClient client(client_opts(port, 0));
    client.ping();
    const rpc::StatReplyMsg stat = client.stat();
    EXPECT_EQ(stat.pending, 0u);
    EXPECT_EQ(stat.loads, 0);
    EXPECT_EQ(stat.fingerprint, svc.state_fingerprint());
  }
  server.stop();
  EXPECT_FALSE(server.running());
  const auto counters = server.counters();
  EXPECT_EQ(counters.accepted, 1u);
  EXPECT_GE(counters.frames_in, 4u);  // hello, auth, ping, stat
}

TEST(Server, AuthRejectWrongSeed) {
  const Workload& w = workload();
  ReconfigService svc(w.arch, w.trace.fabric_w, w.trace.fabric_h,
                      replay_service_options());
  rpc::RpcServerOptions sopts;
  sopts.auth_seed = 7;
  rpc::RpcServer server(&svc, sopts);
  const int port = server.start();
  try {
    rpc::RpcClient client(client_opts(port, 0, /*auth_seed=*/8));
    FAIL() << "expected kNetAuth";
  } catch (const VbsError& e) {
    EXPECT_EQ(e.code(), VbsErrc::kNetAuth);
  }
  server.stop();
  EXPECT_EQ(server.counters().handshake_rejects, 1u);
}

TEST(Server, TenantSpoofIsNetProto) {
  const Workload& w = workload();
  ReconfigService svc(w.arch, w.trace.fabric_w, w.trace.fabric_h,
                      replay_service_options());
  rpc::RpcServer server(&svc, rpc::RpcServerOptions{});
  const int port = server.start();
  {
    rpc::RpcClient client(client_opts(port, /*tenant=*/2));
    try {
      client.send_load(w.streams[0], /*tenant=*/3);  // not my tenant
      FAIL() << "expected kNetProto";
    } catch (const VbsError& e) {
      EXPECT_EQ(e.code(), VbsErrc::kNetProto);
    }
  }
  server.stop();
  EXPECT_EQ(server.counters().proto_errors, 1u);
  EXPECT_EQ(svc.stats().loads, 0);  // the spoof never reached the service
}

TEST(Server, AdminOnlyOpsRejectedForTenants) {
  const Workload& w = workload();
  ReconfigService svc(w.arch, w.trace.fabric_w, w.trace.fabric_h,
                      replay_service_options());
  rpc::RpcServer server(&svc, rpc::RpcServerOptions{});
  const int port = server.start();
  {
    rpc::RpcClient client(client_opts(port, /*tenant=*/1));
    try {
      client.set_priority(1, 99);
      FAIL() << "expected kNetProto";
    } catch (const VbsError& e) {
      EXPECT_EQ(e.code(), VbsErrc::kNetProto);
    }
  }
  server.stop();
}

TEST(Server, EndToEndLoadThenUnload) {
  const Workload& w = workload();
  ReconfigService svc(w.arch, w.trace.fabric_w, w.trace.fabric_h,
                      replay_service_options());
  rpc::RpcServer server(&svc, rpc::RpcServerOptions{});  // auto_drain on
  const int port = server.start();
  {
    rpc::RpcClient client(client_opts(port, 0));
    const RequestId load = client.send_load(w.streams[0], 0);
    EXPECT_GE(load, 0);
    const RequestResult r1 = client.await_result();
    EXPECT_EQ(r1.request, load);
    EXPECT_EQ(r1.status, RequestStatus::kDone);
    EXPECT_EQ(r1.kind, RequestKind::kLoad);
    EXPECT_EQ(r1.tenant, 0);

    const RequestId unload = client.send_unload(load, 0);
    const RequestResult r2 = client.await_result();
    EXPECT_EQ(r2.request, unload);
    EXPECT_EQ(r2.status, RequestStatus::kDone);
  }
  server.stop();
  EXPECT_EQ(svc.stats().loads, 1);
  EXPECT_EQ(svc.stats().unloads, 1);
  EXPECT_EQ(svc.controller().num_tasks(), 0);
}

// --- the determinism contract -----------------------------------------------

TEST(Server, WireReplayFingerprintMatchesOffline) {
  const Workload& w = workload();

  ReconfigService offline(w.arch, w.trace.fabric_w, w.trace.fabric_h,
                          replay_service_options());
  std::vector<RequestResult> offline_results;
  const std::uint64_t offline_fp = offline_replay(offline, &offline_results);

  ReconfigService served(w.arch, w.trace.fabric_w, w.trace.fabric_h,
                         replay_service_options());
  rpc::RpcServerOptions sopts;
  sopts.auto_drain = false;  // drains happen only at DRAIN frames
  rpc::RpcServer server(&served, sopts);
  const int port = server.start();
  std::vector<RequestResult> wire_results;
  std::uint64_t stat_fp = 0;
  {
    rpc::RpcClient admin(client_opts(port, rpc::kAdminTenant));
    wire_results = wire_replay(admin);
    stat_fp = admin.stat().fingerprint;
  }
  server.stop();

  EXPECT_EQ(served.state_fingerprint(), offline_fp);
  EXPECT_EQ(stat_fp, offline_fp);

  // Every modeled field of every result must match, in order: the wire
  // client observed exactly the offline run.
  ASSERT_EQ(wire_results.size(), offline_results.size());
  for (std::size_t i = 0; i < wire_results.size(); ++i) {
    const RequestResult& a = offline_results[i];
    const RequestResult& b = wire_results[i];
    EXPECT_EQ(a.request, b.request) << i;
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.status, b.status) << i;
    EXPECT_EQ(a.task, b.task) << i;
    EXPECT_EQ(a.tenant, b.tenant) << i;
    EXPECT_EQ(a.priority, b.priority) << i;
    EXPECT_EQ(a.code, b.code) << i;
    EXPECT_EQ(a.latency_ticks, b.latency_ticks) << i;
    EXPECT_EQ(a.queue_wait_ticks, b.queue_wait_ticks) << i;
    EXPECT_EQ(a.exec_ticks, b.exec_ticks) << i;
  }
}

TEST(Server, JournaledWireReplayRecoversToSameFingerprint) {
  const Workload& w = workload();
  TempDir dir("journal");

  ReconfigService offline(w.arch, w.trace.fabric_w, w.trace.fabric_h,
                          replay_service_options());
  const std::uint64_t offline_fp = offline_replay(offline, nullptr);

  {
    ReconfigService served(w.arch, w.trace.fabric_w, w.trace.fabric_h,
                           replay_service_options());
    served.open_journal(dir.path);
    rpc::RpcServerOptions sopts;
    sopts.auto_drain = false;
    rpc::RpcServer server(&served, sopts);
    const int port = server.start();
    {
      rpc::RpcClient admin(client_opts(port, rpc::kAdminTenant));
      wire_replay(admin);
    }
    server.stop();
    EXPECT_EQ(served.state_fingerprint(), offline_fp);
  }

  // The journal alone rebuilds the served state.
  ReconfigService::RecoveryInfo info;
  const auto recovered = ReconfigService::recover(dir.path, /*threads=*/1,
                                                  &info);
  EXPECT_GT(info.records, 0);
  EXPECT_EQ(recovered->state_fingerprint(), offline_fp);
}

// --- overload ----------------------------------------------------------------

TEST(Server, OverloadShedsWithTypedResults) {
  const Workload& w = workload();
  ServiceOptions so = replay_service_options();
  so.queue_limit = 2;
  ReconfigService svc(w.arch, w.trace.fabric_w, w.trace.fabric_h, so);
  rpc::RpcServerOptions sopts;
  sopts.auto_drain = false;
  rpc::RpcServer server(&svc, sopts);
  const int port = server.start();
  int shed = 0, done = 0;
  {
    rpc::RpcClient admin(client_opts(port, rpc::kAdminTenant));
    for (int i = 0; i < 6; ++i) admin.send_load(w.streams[0], 0);
    for (const RequestResult& r : admin.drain()) {
      if (r.status == RequestStatus::kShed) {
        ++shed;
        EXPECT_EQ(r.code, VbsErrc::kQueueFull);
      } else if (r.status == RequestStatus::kDone) {
        ++done;
      }
    }
  }
  server.stop();
  EXPECT_EQ(shed, 4);  // queue_limit 2 of 6 admitted
  EXPECT_EQ(done, 2);
  EXPECT_EQ(svc.stats().shed, 4);
}

// --- closed-loop load generator ---------------------------------------------

TEST(Server, LoadGenClosedLoopSmoke) {
  const Workload& w = workload();
  ServiceOptions so;
  so.threads = 2;  // unbounded queue, no deadlines: every request resolves
  ReconfigService svc(w.arch, w.trace.fabric_w, w.trace.fabric_h, so);
  rpc::RpcServer server(&svc, rpc::RpcServerOptions{});
  const int port = server.start();

  rpc::LoadGenOptions lopts;
  lopts.port = port;
  lopts.connections = 8;
  lopts.trace = w.trace;
  lopts.kind_streams = w.streams;
  lopts.timeout_ms = 60'000;
  const rpc::LoadGenReport report = rpc::run_loadgen(lopts);
  server.stop();

  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(report.requests_sent,
            static_cast<long long>(w.trace.events.size()));
  EXPECT_EQ(report.results, report.requests_sent);
  EXPECT_EQ(report.acks, report.requests_sent);
  EXPECT_GT(report.done, 0);
  // Every result is one of the typed terminal states.
  EXPECT_EQ(report.done + report.shed + report.rejected + report.failed +
                report.deadline,
            report.results);
  EXPECT_EQ(report.latencies_ms.size(),
            static_cast<std::size_t>(report.results));
  for (const double ms : report.latencies_ms) EXPECT_GE(ms, 0.0);
  EXPECT_EQ(report.wire_errors, 0);
  EXPECT_EQ(report.door_sheds, 0);
  EXPECT_GT(svc.stats().loads, 0);
}

TEST(Server, HostileSocketsNeverCrashTheServer) {
  const Workload& w = workload();
  ReconfigService svc(w.arch, w.trace.fabric_w, w.trace.fabric_h,
                      replay_service_options());
  rpc::RpcServerOptions sopts;
  // Aggressive schedule: truncated reads, spurious EAGAINs, and ~2% of
  // socket ops severing the connection mid-frame.
  sopts.net_faults = FaultPlan::parse(
      "seed=11,net_short=0.3,net_eagain=0.2,net_drop=0.02");
  rpc::RpcServer server(&svc, sopts);
  const int port = server.start();

  rpc::LoadGenOptions lopts;
  lopts.port = port;
  lopts.connections = 8;
  lopts.trace = w.trace;
  lopts.kind_streams = w.streams;
  lopts.timeout_ms = 60'000;
  try {
    (void)rpc::run_loadgen(lopts);
  } catch (const VbsError& e) {
    // Every connection dying early is an acceptable outcome — the server
    // surviving is the contract under test.
    EXPECT_EQ(e.code(), VbsErrc::kNetClosed);
  }
  EXPECT_TRUE(server.running());
  // The server is still healthy: a clean client eventually works end to
  // end (its own server-side connection rides the same fault schedule, so
  // a few attempts may be severed).
  bool healthy = false;
  for (int attempt = 0; attempt < 8 && !healthy; ++attempt) {
    try {
      rpc::RpcClient client(client_opts(port, 0));
      client.ping();
      (void)client.stat();
      healthy = true;
    } catch (const VbsError&) {
    }
  }
  EXPECT_TRUE(healthy);
  server.stop();
}

TEST(Server, RemoteShutdownStopsServer) {
  const Workload& w = workload();
  ReconfigService svc(w.arch, w.trace.fabric_w, w.trace.fabric_h,
                      replay_service_options());
  rpc::RpcServer server(&svc, rpc::RpcServerOptions{});
  const int port = server.start();
  {
    rpc::RpcClient admin(client_opts(port, rpc::kAdminTenant));
    admin.shutdown();  // returns after the server's ACK
  }
  for (int i = 0; i < 500 && server.running(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_FALSE(server.running());
  EXPECT_THROW(rpc::RpcClient(client_opts(port, 0)), VbsError);
  server.stop();  // joins the already-exited threads
}

}  // namespace
}  // namespace vbs
