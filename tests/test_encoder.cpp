// End-to-end Virtual Bit-Stream tests: encode -> serialize -> deserialize ->
// de-virtualize -> electrical equivalence with the original netlist. This is
// the paper's whole pipeline (Fig. 3) exercised as one property, plus
// compression-behaviour and relocation checks.
#include <gtest/gtest.h>

#include "bitstream/bitstream.h"
#include "bitstream/connectivity.h"
#include "flow/flow.h"
#include "netlist/generator.h"
#include "vbs/devirtualizer.h"
#include "vbs/encoder.h"

namespace vbs {
namespace {

struct Pipeline {
  FlowResult r;
  BitVector raw;

  explicit Pipeline(int n_lut = 50, std::uint64_t seed = 21, int w = 8,
                    int grid = 8) {
    GenParams p;
    p.n_lut = n_lut;
    p.n_pi = 5;
    p.n_po = 5;
    p.seed = seed;
    FlowOptions o;
    o.arch.chan_width = w;
    o.seed = seed;
    r = run_flow(generate_netlist(p), grid, grid, o);
    EXPECT_TRUE(r.routed());
    raw = generate_raw_bitstream(*r.fabric, r.netlist, r.packed, r.placement,
                                 r.routing.routes);
  }

  VbsImage encode(EncodeOptions opts = {}, EncodeStats* stats = nullptr) {
    return encode_vbs(*r.fabric, r.netlist, r.packed, r.placement,
                      r.routing.routes, opts, stats);
  }

  /// Full round trip through the wire format and the online decoder.
  std::string decode_and_verify(const VbsImage& img) {
    const VbsImage back = deserialize_vbs(serialize_vbs(img));
    const BitVector decoded = devirtualize_image(back, *r.fabric, {0, 0});
    return verify_connectivity(*r.fabric, decoded, r.netlist, r.packed,
                               r.placement);
  }
};

TEST(Encoder, EndToEndFineGrain) {
  Pipeline p;
  EncodeStats stats;
  const VbsImage img = p.encode({}, &stats);
  EXPECT_GT(stats.entries, 0);
  EXPECT_EQ(p.decode_and_verify(img), "");
}

TEST(Encoder, VbsNeverLargerThanRaw) {
  // Paper Section IV-A: "the VBS performs constantly better in terms of
  // size in comparison to the raw coding" (thanks to the raw fallback).
  Pipeline p;
  EncodeStats stats;
  p.encode({}, &stats);
  EXPECT_LT(stats.vbs_bits, stats.raw_bits);
}

TEST(Encoder, EmptyRegionsAreOmitted) {
  Pipeline p(12, 3, 8, 8);  // 12 LUTs on 64 tiles: mostly empty fabric
  EncodeStats stats;
  const VbsImage img = p.encode({}, &stats);
  EXPECT_LT(static_cast<int>(img.entries.size()), 64);
  EXPECT_EQ(p.decode_and_verify(img), "");
}

class ClusterSweep : public ::testing::TestWithParam<int> {};

TEST_P(ClusterSweep, EndToEndAtEveryGrain) {
  Pipeline p;
  EncodeOptions o;
  o.cluster = GetParam();
  EncodeStats stats;
  const VbsImage img = p.encode(o, &stats);
  EXPECT_EQ(img.cluster, GetParam());
  EXPECT_EQ(p.decode_and_verify(img), "");
  EXPECT_LE(stats.vbs_bits, stats.raw_bits);
}

INSTANTIATE_TEST_SUITE_P(Grains, ClusterSweep, ::testing::Values(1, 2, 3, 4, 8));

TEST(Encoder, ClusteringImprovesCompression) {
  // Paper Fig. 5: cluster size 2 compresses substantially better than the
  // finest grain.
  Pipeline p(60, 9, 8, 8);
  EncodeStats s1, s2;
  p.encode({}, &s1);
  EncodeOptions o;
  o.cluster = 2;
  p.encode(o, &s2);
  EXPECT_LT(s2.vbs_bits, s1.vbs_bits);
}

TEST(Encoder, ForceRawMatchesRawSizePlusOverhead) {
  Pipeline p;
  EncodeOptions o;
  o.force_raw = true;
  EncodeStats stats;
  const VbsImage img = p.encode(o, &stats);
  EXPECT_EQ(stats.raw_entries, stats.entries);
  // Still decodes correctly.
  EXPECT_EQ(p.decode_and_verify(img), "");
  // Raw coding per entry carries the full routing payload, so the stream
  // is at least the occupied fraction of the raw image.
  EXPECT_GT(stats.vbs_bits,
            static_cast<std::size_t>(stats.entries) *
                static_cast<std::size_t>(p.r.fabric->spec().nroute_bits()));
}

TEST(Encoder, SmartCodingBeatsForceRaw) {
  Pipeline p;
  EncodeStats smart, raw;
  p.encode({}, &smart);
  EncodeOptions o;
  o.force_raw = true;
  p.encode(o, &raw);
  EXPECT_LT(smart.vbs_bits, raw.vbs_bits);
}

TEST(Encoder, DeterministicInSeed) {
  Pipeline p;
  const BitVector a = serialize_vbs(p.encode());
  const BitVector b = serialize_vbs(p.encode());
  EXPECT_EQ(a, b);
}

TEST(Encoder, StatsAreConsistent) {
  Pipeline p;
  EncodeStats stats;
  const VbsImage img = p.encode({}, &stats);
  EXPECT_EQ(stats.entries, static_cast<int>(img.entries.size()));
  EXPECT_EQ(stats.raw_entries, stats.conflict_fallbacks +
                                   stats.size_fallbacks +
                                   stats.overflow_fallbacks);
  EXPECT_EQ(stats.vbs_bits, serialize_vbs(img).size());
  long long conns = 0;
  int raws = 0;
  for (const VbsEntry& e : img.entries) {
    conns += static_cast<long long>(e.conns.size());
    raws += e.raw;
  }
  EXPECT_EQ(stats.connections, conns);
  EXPECT_EQ(stats.raw_entries, raws);
}

TEST(Encoder, RelocationIsBitExact) {
  // The same stream decoded at two origins must produce identical per-tile
  // frames — the position-independence the paper builds the VBS for.
  Pipeline p(30, 4, 8, 6);
  const VbsImage img = p.encode();
  const Fabric big(p.r.fabric->spec(), 14, 13);
  const BitVector at11 = devirtualize_image(img, big, {1, 1});
  const BitVector at75 = devirtualize_image(img, big, {7, 5});
  const int nraw = big.spec().nraw_bits();
  for (int ty = 0; ty < img.task_h; ++ty) {
    for (int tx = 0; tx < img.task_w; ++tx) {
      const auto frame = [&](const BitVector& cfg, Point origin) {
        const std::size_t base = big.macro_config_offset(
            big.macro_index(origin.x + tx, origin.y + ty));
        return cfg.slice(base, base + static_cast<std::size_t>(nraw));
      };
      ASSERT_EQ(frame(at11, {1, 1}), frame(at75, {7, 5}))
          << "tile " << tx << "," << ty;
    }
  }
}

TEST(Encoder, RelocatedDecodeMatchesOriginDecode) {
  Pipeline p(30, 4, 8, 6);
  const VbsImage img = p.encode();
  const BitVector at_origin = devirtualize_image(img, *p.r.fabric, {0, 0});
  const Fabric big(p.r.fabric->spec(), 10, 10);
  const BitVector relocated = devirtualize_image(img, big, {3, 2});
  const int nraw = big.spec().nraw_bits();
  for (int ty = 0; ty < img.task_h; ++ty) {
    for (int tx = 0; tx < img.task_w; ++tx) {
      const std::size_t src = p.r.fabric->macro_config_offset(
          p.r.fabric->macro_index(tx, ty));
      const std::size_t dst =
          big.macro_config_offset(big.macro_index(3 + tx, 2 + ty));
      ASSERT_EQ(at_origin.slice(src, src + static_cast<std::size_t>(nraw)),
                relocated.slice(dst, dst + static_cast<std::size_t>(nraw)));
    }
  }
}

TEST(Encoder, DecodeOutOfBoundsThrows) {
  Pipeline p(20, 2, 8, 6);
  const VbsImage img = p.encode();
  const Fabric big(p.r.fabric->spec(), 8, 8);
  EXPECT_THROW(devirtualize_image(img, big, {4, 0}), std::runtime_error);
  EXPECT_THROW(devirtualize_image(img, big, {-1, 0}), std::runtime_error);
}

TEST(Encoder, WorksWithWiltonSwitchBoxes) {
  GenParams gp;
  gp.n_lut = 40;
  gp.seed = 15;
  FlowOptions o;
  o.arch.chan_width = 9;
  o.arch.sb_pattern = SbPattern::kWilton;
  FlowResult r = run_flow(generate_netlist(gp), 7, 7, o);
  ASSERT_TRUE(r.routed());
  EncodeStats stats;
  const VbsImage img = encode_vbs(*r.fabric, r.netlist, r.packed, r.placement,
                                  r.routing.routes, {}, &stats);
  const BitVector decoded =
      devirtualize_image(deserialize_vbs(serialize_vbs(img)), *r.fabric, {0, 0});
  EXPECT_EQ(verify_connectivity(*r.fabric, decoded, r.netlist, r.packed,
                                r.placement),
            "");
}

TEST(Encoder, CompactFanoutDecodesAndNeverCostsMoreThanOneBitPerEntry) {
  Pipeline p;
  EncodeStats plain, compact;
  p.encode({}, &plain);
  EncodeOptions o;
  o.compact_fanout = true;
  const VbsImage img = p.encode(o, &compact);
  // Adaptive per-entry choice: worst case is the 1-bit selector per entry.
  EXPECT_LE(compact.vbs_bits,
            plain.vbs_bits + static_cast<std::size_t>(plain.entries));
  EXPECT_EQ(p.decode_and_verify(img), "");
}

TEST(Encoder, CompactFanoutWinsOnClusteredRegions) {
  // Bigger regions hold whole fan-out trees, where deduplicating the `in`
  // endpoint pays off.
  Pipeline p;
  EncodeOptions o;
  o.cluster = 4;
  EncodeStats plain, compact;
  p.encode(o, &plain);
  o.compact_fanout = true;
  const VbsImage img = p.encode(o, &compact);
  EXPECT_LT(compact.vbs_bits, plain.vbs_bits);
  int compact_entries = 0;
  for (const VbsEntry& e : img.entries) compact_entries += e.compact;
  EXPECT_GT(compact_entries, 0);
  EXPECT_EQ(p.decode_and_verify(img), "");
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, EndToEndProperty) {
  // Property: for any routable design, encode -> wire -> decode preserves
  // electrical connectivity exactly.
  Pipeline p(45, GetParam(), 8, 8);
  EXPECT_EQ(p.decode_and_verify(p.encode()), "");
  EncodeOptions o;
  o.cluster = 2;
  EXPECT_EQ(p.decode_and_verify(p.encode(o)), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace vbs
