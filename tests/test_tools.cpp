// Tests for the tooling layer: architecture-description parsing, the CLI
// argument parser, and netlist file round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "arch/arch_io.h"
#include "netlist/generator.h"
#include "netlist/netlist_io.h"
#include "util/cli.h"

namespace vbs {
namespace {

TEST(ArchIo, ParsesFullDescription) {
  const ArchSpec s = arch_from_string(
      "# example architecture\n"
      "chan_width = 12\n"
      "lut_k = 5\n"
      "sb_pattern = wilton\n");
  EXPECT_EQ(s.chan_width, 12);
  EXPECT_EQ(s.lut_k, 5);
  EXPECT_EQ(s.sb_pattern, SbPattern::kWilton);
}

TEST(ArchIo, DefaultsApplyForMissingKeys) {
  const ArchSpec s = arch_from_string("chan_width = 9\n");
  EXPECT_EQ(s.chan_width, 9);
  EXPECT_EQ(s.lut_k, 6);
  EXPECT_EQ(s.sb_pattern, SbPattern::kDisjoint);
}

TEST(ArchIo, RoundTrip) {
  ArchSpec s;
  s.chan_width = 7;
  s.lut_k = 4;
  s.sb_pattern = SbPattern::kWilton;
  EXPECT_EQ(arch_from_string(arch_to_string(s)), s);
}

TEST(ArchIo, DiagnosesErrors) {
  EXPECT_THROW(arch_from_string("chan_width 12\n"), std::runtime_error);
  EXPECT_THROW(arch_from_string("bogus_key = 3\n"), std::runtime_error);
  EXPECT_THROW(arch_from_string("sb_pattern = fancy\n"), std::runtime_error);
  EXPECT_THROW(arch_from_string("chan_width = twelve\n"), std::runtime_error);
  EXPECT_THROW(arch_from_string("chan_width = 12 extra\n"), std::runtime_error);
  // Validation still applies: W = 1 is architecturally invalid.
  EXPECT_THROW(arch_from_string("chan_width = 1\n"), std::invalid_argument);
}

TEST(ArchIo, MissingFileThrows) {
  EXPECT_THROW(read_arch_file("/nonexistent/arch.txt"), std::runtime_error);
}

TEST(Cli, ParsesFlagsValuesAndPositionals) {
  const char* argv[] = {"tool", "input.netl", "--out",     "x.vbs",
                        "--verbose", "--cluster", "4", "second"};
  const CliArgs args(8, const_cast<char**>(argv), {"--out", "--cluster"},
                     {"--verbose"});
  EXPECT_TRUE(args.has_flag("--verbose"));
  EXPECT_EQ(args.value_or("--out", ""), "x.vbs");
  EXPECT_EQ(args.int_or("--cluster", 1), 4);
  EXPECT_EQ(args.int_or("--seed", 7), 7);  // absent -> default
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.netl");
  EXPECT_EQ(args.positional()[1], "second");
}

TEST(Cli, RejectsUnknownAndDangling) {
  const char* bad1[] = {"tool", "--frobnicate"};
  EXPECT_THROW(CliArgs(2, const_cast<char**>(bad1), {}, {}),
               std::runtime_error);
  const char* bad2[] = {"tool", "--out"};
  EXPECT_THROW(CliArgs(2, const_cast<char**>(bad2), {"--out"}, {}),
               std::runtime_error);
  const char* bad3[] = {"tool", "--n", "abc"};
  const CliArgs args(3, const_cast<char**>(bad3), {"--n"}, {});
  EXPECT_THROW(args.int_or("--n", 0), std::runtime_error);
}

TEST(Cli, SharedFlagHelpers) {
  const char* argv[] = {"tool", "--seed", "9", "--threads", "4",
                        "--effort", "0.5"};
  const CliArgs args(7, const_cast<char**>(argv),
                     {"--seed", "--threads", "--effort"}, {});
  EXPECT_EQ(seed_or(args), 9u);
  EXPECT_EQ(threads_or(args), 4);
  EXPECT_EQ(args.double_or("--effort", 1.0), 0.5);
  EXPECT_EQ(args.double_or("--missing", 1.25), 1.25);

  const char* none[] = {"tool"};
  const CliArgs empty(1, const_cast<char**>(none), {}, {});
  EXPECT_EQ(seed_or(empty), 1u);  // the flow's default seed
  EXPECT_EQ(threads_or(empty), 1);
  EXPECT_EQ(threads_or(empty, 8), 8);

  const char* bad[] = {"tool", "--threads", "0", "--effort", "fast"};
  const CliArgs badargs(5, const_cast<char**>(bad),
                        {"--threads", "--effort"}, {});
  EXPECT_THROW(threads_or(badargs), std::runtime_error);
  EXPECT_THROW(badargs.double_or("--effort", 1.0), std::runtime_error);
}

TEST(Cli, ParsePairAcceptsBothSeparators) {
  EXPECT_EQ(parse_pair("16x12", 'x'), (std::pair{16, 12}));
  EXPECT_EQ(parse_pair("3,7", ','), (std::pair{3, 7}));
  EXPECT_EQ(parse_pair("-1,2", ','), (std::pair{-1, 2}));
  EXPECT_THROW(parse_pair("16", 'x'), std::runtime_error);
  EXPECT_THROW(parse_pair("ax2", 'x'), std::runtime_error);
  // Trailing garbage must fail loudly, not truncate: 1O is a typo, not 1.
  EXPECT_THROW(parse_pair("16x1O", 'x'), std::runtime_error);
  EXPECT_THROW(parse_pair("3,4x", ','), std::runtime_error);
}

TEST(Cli, NumericOptionsRejectTrailingGarbage) {
  const char* argv[] = {"tool", "--n", "12a", "--f", "0.5x"};
  const CliArgs args(5, const_cast<char**>(argv), {"--n", "--f"}, {});
  EXPECT_THROW(args.int_or("--n", 0), std::runtime_error);
  EXPECT_THROW(args.double_or("--f", 0.0), std::runtime_error);
}

TEST(Cli, ToolMainReportsErrorsWithUsage) {
  EXPECT_EQ(tool_main("t", "t <arg>", [] { return 0; }), 0);
  EXPECT_EQ(tool_main("t", "t <arg>", [] { return 2; }), 2);
  EXPECT_EQ(tool_main("t", "t <arg>",
                      []() -> int { throw std::runtime_error("boom"); }),
            1);
}

TEST(NetlistIo, FileRoundTrip) {
  GenParams p;
  p.n_lut = 30;
  p.seed = 9;
  const Netlist nl = generate_netlist(p);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("netl_test_" + std::to_string(::getpid()) + ".netl"))
          .string();
  write_netlist_file(path, nl);
  const Netlist back = read_netlist_file(path);
  EXPECT_EQ(netlist_to_string(back), netlist_to_string(nl));
  std::filesystem::remove(path);
  EXPECT_THROW(read_netlist_file(path), std::runtime_error);
}

}  // namespace
}  // namespace vbs
