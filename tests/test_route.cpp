// Router tests: end-to-end routing validity (via electrical connectivity
// extraction), congestion negotiation, pin reservation, and the minimum-
// channel-width search.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bitstream/bitstream.h"
#include "bitstream/connectivity.h"
#include "flow/flow.h"
#include "netlist/generator.h"
#include "route/mcw.h"
#include "route/routing_stats.h"

namespace vbs {
namespace {

FlowOptions small_opts(int w = 8) {
  FlowOptions o;
  o.arch.chan_width = w;
  return o;
}

TEST(Route, TinyDesignRoutesAndVerifies) {
  GenParams p;
  p.n_lut = 12;
  p.n_pi = 3;
  p.n_po = 3;
  p.seed = 2;
  FlowResult r = run_flow(generate_netlist(p), 4, 4, small_opts());
  ASSERT_TRUE(r.routed());
  const BitVector raw = generate_raw_bitstream(*r.fabric, r.netlist, r.packed,
                                               r.placement, r.routing.routes);
  EXPECT_EQ(raw.size(), r.fabric->config_bits_total());
  EXPECT_EQ(verify_connectivity(*r.fabric, raw, r.netlist, r.packed,
                                r.placement),
            "");
}

class RouteSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouteSweep, MediumDesignsRouteCleanly) {
  GenParams p;
  p.n_lut = 80;
  p.n_pi = 8;
  p.n_po = 8;
  p.seed = GetParam();
  FlowOptions o = small_opts(10);
  o.seed = GetParam();
  FlowResult r = run_flow(generate_netlist(p), 10, 10, o);
  ASSERT_TRUE(r.routed());
  // No overused nodes at exit and every net tree is rooted at its source.
  EXPECT_EQ(r.routing.overused_nodes, 0u);
  const BitVector raw = generate_raw_bitstream(*r.fabric, r.netlist, r.packed,
                                               r.placement, r.routing.routes);
  EXPECT_EQ(verify_connectivity(*r.fabric, raw, r.netlist, r.packed,
                                r.placement),
            "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteSweep, ::testing::Values(1, 5, 9));

TEST(Route, TreesAreWellFormed) {
  GenParams p;
  p.n_lut = 40;
  p.seed = 4;
  FlowResult r = run_flow(generate_netlist(p), 7, 7, small_opts());
  ASSERT_TRUE(r.routed());
  for (const NetRoute& route : r.routing.routes) {
    if (route.nodes.empty()) continue;
    EXPECT_EQ(route.nodes[0].parent, -1);
    EXPECT_EQ(route.nodes[0].fabric_edge, -1);
    for (std::size_t k = 1; k < route.nodes.size(); ++k) {
      const auto& tn = route.nodes[k];
      ASSERT_GE(tn.parent, 0);
      ASSERT_LT(tn.parent, static_cast<std::int32_t>(k));
      // The recorded fabric edge really joins parent and child wires.
      const Fabric::Edge& e =
          r.fabric->edge_at(static_cast<std::size_t>(tn.fabric_edge));
      EXPECT_EQ(e.to, tn.rr);
    }
  }
}

TEST(Route, NoNodeSharedBetweenNets) {
  GenParams p;
  p.n_lut = 60;
  p.seed = 6;
  FlowResult r = run_flow(generate_netlist(p), 8, 8, small_opts());
  ASSERT_TRUE(r.routed());
  std::map<int, int> owner;
  for (std::size_t n = 0; n < r.routing.routes.size(); ++n) {
    std::set<int> mine;
    for (const auto& tn : r.routing.routes[n].nodes) mine.insert(tn.rr);
    for (const int rr : mine) {
      const auto [it, fresh] = owner.insert({rr, static_cast<int>(n)});
      EXPECT_TRUE(fresh) << "wire " << rr << " used by nets " << it->second
                         << " and " << n;
    }
  }
}

TEST(Route, PinsOnlyUsedAsOwnTerminals) {
  // A LUT pin wire may appear in a route only if it is that net's own
  // source or one of its sinks — never a foreign net's through-wire.
  GenParams p;
  p.n_lut = 50;
  p.seed = 8;
  FlowResult r = run_flow(generate_netlist(p), 8, 8, small_opts());
  ASSERT_TRUE(r.routed());
  const MacroModel& mm = r.fabric->macro();
  std::set<int> pin_nodes;
  for (int my = 0; my < r.fabric->height(); ++my) {
    for (int mx = 0; mx < r.fabric->width(); ++mx) {
      for (int pin = 0; pin < mm.spec().lb_pins(); ++pin) {
        pin_nodes.insert(r.fabric->global_node(mx, my, mm.pin_node(pin)));
      }
    }
  }
  const RouteRequest req =
      build_route_request(*r.fabric, r.netlist, r.packed, r.placement);
  ASSERT_EQ(req.nets.size(), r.routing.routes.size());
  for (std::size_t n = 0; n < req.nets.size(); ++n) {
    std::set<int> own_terminals{req.nets[n].source};
    own_terminals.insert(req.nets[n].sinks.begin(), req.nets[n].sinks.end());
    for (const auto& tn : r.routing.routes[n].nodes) {
      if (!pin_nodes.count(tn.rr)) continue;
      EXPECT_TRUE(own_terminals.count(tn.rr))
          << "net " << n << " routed through a foreign LUT pin wire";
    }
  }
}

TEST(Route, UnroutableAtTinyWidthRoutableAtLarge) {
  GenParams p;
  p.n_lut = 90;
  p.n_pi = 8;
  p.n_po = 8;
  p.seed = 3;
  const Netlist nl = generate_netlist(p);

  FlowOptions tight = small_opts(2);
  tight.route.max_iterations = 8;
  FlowResult rt = run_flow(nl, 10, 10, tight);
  EXPECT_FALSE(rt.routed());

  FlowResult wide = run_flow(nl, 10, 10, small_opts(12));
  EXPECT_TRUE(wide.routed());
}

TEST(Route, McwSearchFindsMinimum) {
  GenParams p;
  p.n_lut = 60;
  p.n_pi = 6;
  p.n_po = 6;
  p.seed = 11;
  const Netlist nl = generate_netlist(p);
  ArchSpec spec;
  spec.chan_width = 12;
  const PackedDesign pd = pack_netlist(nl, spec);
  const Placement pl = place_design(nl, pd, spec, 9, 9, {});

  McwOptions mo;
  mo.router.max_iterations = 20;
  const McwResult res = find_min_channel_width(spec, nl, pd, pl, mo);
  ASSERT_GT(res.mcw, 1);
  EXPECT_LE(res.mcw, 12);
  // Minimality: one track fewer must be unroutable (modulo router effort —
  // use the same options the search used).
  ArchSpec below = spec;
  below.chan_width = res.mcw - 1;
  if (below.chan_width >= 2) {
    bool track_ok = true;
    for (const IoSlot& s : pl.io_loc) track_ok &= s.track < below.chan_width;
    if (track_ok) {
      const Fabric f(below, 9, 9);
      PathfinderRouter router(f, build_route_request(f, nl, pd, pl));
      EXPECT_FALSE(router.route(mo.router).success);
    }
  }
}

TEST(Route, WidthLimitMasksExcessTracks) {
  // Routing a W=12 fabric with width_limit 6 must behave like a 6-track
  // fabric: only the top 6 tracks survive, so no route may touch a wire of
  // tracks 0..5, and I/O terminals (from-top ports) stay reachable.
  GenParams p;
  p.n_lut = 60;
  p.n_pi = 6;
  p.n_po = 6;
  p.seed = 11;
  const Netlist nl = generate_netlist(p);
  ArchSpec spec;
  spec.chan_width = 12;
  const PackedDesign pd = pack_netlist(nl, spec);
  PlaceOptions popts;
  popts.io_per_tile = 3;  // keep logical I/O tracks below the limit
  const Placement pl = place_design(nl, pd, spec, 9, 9, popts);
  for (const IoSlot& s : pl.io_loc) ASSERT_LT(s.track, 6);
  const Fabric fabric(spec, 9, 9);
  const RouteRequest req =
      build_route_request(fabric, nl, pd, pl, /*io_tracks_from_top=*/true);

  const int limit = 6;
  PathfinderRouter router(fabric, req, limit);
  const RoutingResult rr = router.route({});
  ASSERT_TRUE(rr.success);

  const MacroModel& mm = fabric.macro();
  std::set<int> masked;
  for (int my = 0; my < fabric.height(); ++my) {
    for (int mx = 0; mx < fabric.width(); ++mx) {
      for (int t = 0; t < spec.chan_width - limit; ++t) {
        masked.insert(fabric.global_node(mx, my, mm.xw(t)));
        masked.insert(fabric.global_node(mx, my, mm.ys(t)));
        for (int s = 0; s <= spec.pins_on_x(); ++s) {
          masked.insert(fabric.global_node(mx, my, mm.x(t, s)));
        }
        for (int s = 0; s <= spec.pins_on_y(); ++s) {
          masked.insert(fabric.global_node(mx, my, mm.y(t, s)));
        }
      }
    }
  }
  for (const NetRoute& route : rr.routes) {
    for (const auto& tn : route.nodes) {
      EXPECT_FALSE(masked.count(tn.rr)) << "route uses a masked track wire";
    }
  }
}

TEST(Route, SeededRouterReusesPriorSolution) {
  // Seeding a fresh router with a full prior solution leaves nothing to
  // search on the first iteration: the reroute converges with a fraction
  // of the cold pops and identical sink connectivity.
  GenParams p;
  p.n_lut = 60;
  p.n_pi = 6;
  p.n_po = 6;
  p.seed = 11;
  const Netlist nl = generate_netlist(p);
  ArchSpec spec;
  spec.chan_width = 10;
  const PackedDesign pd = pack_netlist(nl, spec);
  const Placement pl = place_design(nl, pd, spec, 9, 9, {});
  const Fabric fabric(spec, 9, 9);
  const RouteRequest req = build_route_request(fabric, nl, pd, pl);

  PathfinderRouter cold(fabric, req);
  const RoutingResult base = cold.route({});
  ASSERT_TRUE(base.success);

  PathfinderRouter seeded(fabric, req);
  seeded.seed_routes(base.routes);
  const RoutingResult warm = seeded.route({});
  ASSERT_TRUE(warm.success);
  EXPECT_EQ(warm.iterations, 1);
  EXPECT_LT(warm.heap_pops, base.heap_pops / 4);
  EXPECT_EQ(warm.total_wire_nodes, base.total_wire_nodes);
}

TEST(RoutingStats, CountsSwitchesAndCorrelation) {
  GenParams p;
  p.n_lut = 40;
  p.seed = 19;
  FlowResult r = run_flow(generate_netlist(p), 7, 7, small_opts());
  ASSERT_TRUE(r.routed());
  const RoutingStats st = compute_routing_stats(*r.fabric, r.routing.routes);
  ASSERT_EQ(st.switches_per_macro.size(),
            static_cast<std::size_t>(r.fabric->num_macros()));
  // Total switches equal total tree edges.
  std::size_t edges = 0;
  for (const NetRoute& route : r.routing.routes) {
    for (const auto& tn : route.nodes) edges += (tn.fabric_edge >= 0);
  }
  std::size_t counted = 0;
  for (const int s : st.switches_per_macro) {
    counted += static_cast<std::size_t>(s);
    EXPECT_LE(s, r.fabric->spec().nroute_bits());
  }
  EXPECT_EQ(counted, edges);
  EXPECT_GT(st.switch_utilization, 0.0);
  EXPECT_LT(st.switch_utilization, 1.0);
  EXPECT_EQ(st.total_wire_nodes, r.routing.total_wire_nodes);
  for (std::size_t m = 0; m < st.nets_per_macro.size(); ++m) {
    // A macro can't host more nets than switches.
    EXPECT_LE(st.nets_per_macro[m], st.switches_per_macro[m]);
  }
}

TEST(RoutingStats, PearsonBasics) {
  EXPECT_DOUBLE_EQ(pearson({1, 2, 3}, {2, 4, 6}), 1.0);
  EXPECT_DOUBLE_EQ(pearson({1, 2, 3}, {6, 4, 2}), -1.0);
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 4, 6}), 0.0);  // degenerate
  EXPECT_DOUBLE_EQ(pearson({1, 2}, {1}), 0.0);           // size mismatch
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {1, 3, 2, 4}), 0.8, 1e-12);
}

TEST(Route, PrecomputedCostMatchesReferencePath) {
  // The per-iteration congestion-cost stride (RouterOptions::
  // precomputed_cost, on by default) is identity-preserving by contract:
  // the same trees, heap pops and iteration count as recomputing each
  // node's cost inline in the A* loop.
  GenParams p;
  p.n_lut = 80;
  p.n_pi = 8;
  p.n_po = 8;
  p.seed = 4;
  const Netlist nl = generate_netlist(p);
  FlowOptions pre = small_opts(10);
  pre.seed = 4;
  FlowOptions ref = pre;
  ref.route.precomputed_cost = false;
  FlowResult a = run_flow(nl, 10, 10, pre);
  FlowResult b = run_flow(nl, 10, 10, ref);
  ASSERT_TRUE(a.routed());
  ASSERT_TRUE(b.routed());
  EXPECT_EQ(a.routing.heap_pops, b.routing.heap_pops);
  EXPECT_EQ(a.routing.iterations, b.routing.iterations);
  EXPECT_EQ(a.routing.bbox_retries, b.routing.bbox_retries);
  ASSERT_EQ(a.routing.routes.size(), b.routing.routes.size());
  for (std::size_t i = 0; i < a.routing.routes.size(); ++i) {
    ASSERT_EQ(a.routing.routes[i].nodes.size(),
              b.routing.routes[i].nodes.size());
    for (std::size_t k = 0; k < a.routing.routes[i].nodes.size(); ++k) {
      EXPECT_EQ(a.routing.routes[i].nodes[k].rr,
                b.routing.routes[i].nodes[k].rr);
      EXPECT_EQ(a.routing.routes[i].nodes[k].parent,
                b.routing.routes[i].nodes[k].parent);
    }
  }
}

TEST(Route, DeterministicResult) {
  GenParams p;
  p.n_lut = 40;
  p.seed = 13;
  const Netlist nl = generate_netlist(p);
  FlowResult a = run_flow(nl, 7, 7, small_opts());
  FlowResult b = run_flow(nl, 7, 7, small_opts());
  ASSERT_TRUE(a.routed());
  ASSERT_TRUE(b.routed());
  ASSERT_EQ(a.routing.routes.size(), b.routing.routes.size());
  for (std::size_t i = 0; i < a.routing.routes.size(); ++i) {
    ASSERT_EQ(a.routing.routes[i].nodes.size(),
              b.routing.routes[i].nodes.size());
    for (std::size_t k = 0; k < a.routing.routes[i].nodes.size(); ++k) {
      EXPECT_EQ(a.routing.routes[i].nodes[k].rr,
                b.routing.routes[i].nodes[k].rr);
    }
  }
}

}  // namespace
}  // namespace vbs
