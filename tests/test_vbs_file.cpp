// VBS file-container tests: byte packing and disk round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <unistd.h>
#include <filesystem>

#include "util/error.h"
#include "util/rng.h"
#include "vbs/vbs_file.h"

namespace vbs {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("vbs_test_") + name + "_" +
           std::to_string(::getpid())))
      .string();
}

TEST(PackBits, MsbFirstWithinBytes) {
  BitVector v;
  v.append_bits(0b10110001, 8);
  v.append_bits(0b101, 3);  // partial trailing byte, zero padded
  const std::string bytes = pack_bits(v);
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0b10110001);
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0b10100000);
  EXPECT_EQ(unpack_bits(bytes, 11), v);
}

TEST(PackBits, EmptyVector) {
  const BitVector v;
  EXPECT_TRUE(pack_bits(v).empty());
  EXPECT_EQ(unpack_bits("", 0), v);
}

TEST(PackBits, RandomRoundTrip) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    BitVector v;
    const int n = rng.next_int(0, 300);
    for (int i = 0; i < n; ++i) v.push_back(rng.next_bool(0.5));
    EXPECT_EQ(unpack_bits(pack_bits(v), v.size()), v);
  }
}

TEST(PackBits, RejectsShortBuffer) {
  EXPECT_THROW(unpack_bits("a", 9), std::runtime_error);
}

TEST(VbsFile, DiskRoundTrip) {
  Rng rng(17);
  BitVector v;
  for (int i = 0; i < 1234; ++i) v.push_back(rng.next_bool(0.3));
  const std::string path = temp_path("roundtrip");
  write_vbs_file(path, v);
  EXPECT_EQ(read_vbs_file(path), v);
  std::filesystem::remove(path);
}

TEST(VbsFile, RejectsBadMagicAndTruncation) {
  const std::string path = temp_path("bad");
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOTAVBSFILE";
  }
  EXPECT_THROW(read_vbs_file(path), std::runtime_error);
  BitVector v(100, true);
  write_vbs_file(path, v);
  std::filesystem::resize_file(path, 14);  // cut into the header
  EXPECT_THROW(read_vbs_file(path), std::runtime_error);
  write_vbs_file(path, v);
  std::filesystem::resize_file(path, 25);  // cut into the payload
  EXPECT_THROW(read_vbs_file(path), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(read_vbs_file(path), std::runtime_error);  // missing file
}

// The container checksum makes every single-byte corruption a typed
// rejection: no byte of a VBS2 file is slack.
TEST(VbsFile, EveryByteCorruptionIsRejectedTyped) {
  const std::string path = temp_path("corrupt");
  Rng rng(23);
  BitVector v;
  for (int i = 0; i < 203; ++i) v.push_back(rng.next_bool(0.4));  // odd tail
  write_vbs_file(path, v);
  std::string original;
  {
    std::ifstream is(path, std::ios::binary);
    original.assign(std::istreambuf_iterator<char>(is), {});
  }
  ASSERT_EQ(original.size(), 20u + (203 + 7) / 8);
  for (std::size_t byte = 0; byte < original.size(); ++byte) {
    std::string bad = original;
    bad[byte] = static_cast<char>(bad[byte] ^ 0x10);
    {
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      os.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    }
    try {
      read_vbs_file(path);
      FAIL() << "byte " << byte << " corruption was accepted";
    } catch (const VbsError& e) {
      EXPECT_NE(e.code(), VbsErrc::kNone) << "byte " << byte;
    }
  }
  std::filesystem::remove(path);
}

TEST(VbsFile, LegacyVbs1ContainerIsRejectedWithBadVersion) {
  const std::string path = temp_path("legacy");
  BitVector v(64, true);
  write_vbs_file(path, v);
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  bytes[3] = '1';  // masquerade as the pre-checksum container
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    read_vbs_file(path);
    FAIL() << "legacy container was accepted";
  } catch (const VbsError& e) {
    EXPECT_EQ(e.code(), VbsErrc::kBadVersion);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace vbs
