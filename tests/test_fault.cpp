// Fault-injection and error-taxonomy tests: FaultPlan determinism, spec
// parsing, rate accuracy, and the stability contract of the VbsErrc codes
// that tools expose as exit codes and --json error objects.
#include <gtest/gtest.h>

#include "flow/artifact_io.h"
#include "rtc/service/trace.h"
#include "util/bitio.h"
#include "util/error.h"
#include "util/fault.h"

namespace vbs {
namespace {

// --- error taxonomy ----------------------------------------------------------

TEST(ErrorTaxonomy, CodesAndExitCodesAreStable) {
  // These pairs are a frozen contract (CLI exit codes, --json "errc"):
  // append-only, never renumber. A failure here means an accidental break.
  EXPECT_EQ(static_cast<int>(VbsErrc::kNone), 0);
  EXPECT_EQ(static_cast<int>(VbsErrc::kTruncated), 1);
  EXPECT_EQ(static_cast<int>(VbsErrc::kBadVersion), 2);
  EXPECT_EQ(static_cast<int>(VbsErrc::kBadHeader), 3);
  EXPECT_EQ(static_cast<int>(VbsErrc::kBadEntry), 4);
  EXPECT_EQ(static_cast<int>(VbsErrc::kBadConnection), 5);
  EXPECT_EQ(static_cast<int>(VbsErrc::kTrailingBits), 6);
  EXPECT_EQ(static_cast<int>(VbsErrc::kResourceLimit), 7);
  EXPECT_EQ(static_cast<int>(VbsErrc::kBadContainer), 8);
  EXPECT_EQ(static_cast<int>(VbsErrc::kBadTrace), 9);
  EXPECT_EQ(static_cast<int>(VbsErrc::kArchMismatch), 10);
  EXPECT_EQ(static_cast<int>(VbsErrc::kDecodeFailed), 11);
  EXPECT_EQ(static_cast<int>(VbsErrc::kNoPlacement), 12);
  EXPECT_EQ(static_cast<int>(VbsErrc::kFaultInjected), 13);
  EXPECT_EQ(static_cast<int>(VbsErrc::kQueueFull), 14);
  EXPECT_EQ(static_cast<int>(VbsErrc::kDeadline), 15);
  EXPECT_EQ(static_cast<int>(VbsErrc::kBadJournal), 16);
  EXPECT_EQ(static_cast<int>(VbsErrc::kTornWrite), 17);
  EXPECT_EQ(static_cast<int>(VbsErrc::kNetFrame), 18);
  EXPECT_EQ(static_cast<int>(VbsErrc::kNetAuth), 19);
  EXPECT_EQ(static_cast<int>(VbsErrc::kNetProto), 20);
  EXPECT_EQ(static_cast<int>(VbsErrc::kNetClosed), 21);
  EXPECT_EQ(static_cast<int>(VbsErrc::kNetTimeout), 22);

  EXPECT_EQ(exit_code_for(VbsErrc::kNone), 0);
  EXPECT_EQ(exit_code_for(VbsErrc::kTruncated), 11);
  EXPECT_EQ(exit_code_for(VbsErrc::kArchMismatch), 20);
  EXPECT_EQ(exit_code_for(VbsErrc::kDeadline), 25);
  EXPECT_EQ(exit_code_for(VbsErrc::kBadJournal), 26);
  EXPECT_EQ(exit_code_for(VbsErrc::kTornWrite), 27);
  EXPECT_EQ(exit_code_for(VbsErrc::kNetFrame), 28);
  EXPECT_EQ(exit_code_for(VbsErrc::kNetAuth), 29);
  EXPECT_EQ(exit_code_for(VbsErrc::kNetProto), 30);
  EXPECT_EQ(exit_code_for(VbsErrc::kNetClosed), 31);
  EXPECT_EQ(exit_code_for(VbsErrc::kNetTimeout), 32);

  EXPECT_STREQ(to_string(VbsErrc::kNone), "ok");
  EXPECT_STREQ(to_string(VbsErrc::kTruncated), "truncated");
  EXPECT_STREQ(to_string(VbsErrc::kBadHeader), "bad-header");
  EXPECT_STREQ(to_string(VbsErrc::kBadContainer), "bad-container");
  EXPECT_STREQ(to_string(VbsErrc::kArchMismatch), "arch-mismatch");
  EXPECT_STREQ(to_string(VbsErrc::kFaultInjected), "fault-injected");
  EXPECT_STREQ(to_string(VbsErrc::kQueueFull), "queue-full");
  EXPECT_STREQ(to_string(VbsErrc::kBadJournal), "bad-journal");
  EXPECT_STREQ(to_string(VbsErrc::kTornWrite), "torn-write");
  EXPECT_STREQ(to_string(VbsErrc::kNetFrame), "net-frame");
  EXPECT_STREQ(to_string(VbsErrc::kNetAuth), "net-auth");
  EXPECT_STREQ(to_string(VbsErrc::kNetProto), "net-proto");
  EXPECT_STREQ(to_string(VbsErrc::kNetClosed), "net-closed");
  EXPECT_STREQ(to_string(VbsErrc::kNetTimeout), "net-timeout");
}

TEST(ErrorTaxonomy, LegacyExceptionTypesDeriveFromVbsError) {
  // Existing catch (BitstreamError) / catch (std::runtime_error) sites
  // must keep working while new code dispatches on VbsError::code().
  const BitstreamError b("bits", VbsErrc::kBadEntry);
  const ArtifactError a("artifact");
  const TraceError t(4, "bad record");
  const VbsError* vb = &b;
  const VbsError* va = &a;
  const VbsError* vt = &t;
  EXPECT_EQ(vb->code(), VbsErrc::kBadEntry);
  EXPECT_EQ(va->code(), VbsErrc::kBadContainer);
  EXPECT_EQ(vt->code(), VbsErrc::kBadTrace);
  EXPECT_EQ(t.line(), 4);
  EXPECT_NE(std::string(t.what()).find("line 4"), std::string::npos);
}

// --- fault plan --------------------------------------------------------------

TEST(FaultPlan, DefaultIsDisabledAndNeverFires) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  for (std::uint64_t seq = 0; seq < 1000; ++seq) {
    EXPECT_FALSE(plan.decode_fails(seq));
    EXPECT_FALSE(plan.alloc_fails(seq));
    EXPECT_FALSE(plan.cache_drops(seq));
    EXPECT_EQ(plan.latency_spike_ticks(seq), 0);
  }
}

TEST(FaultPlan, SpecRoundTripAndParseErrors) {
  const FaultPlan plan =
      FaultPlan::parse("seed=7,decode=0.1,alloc=0.05,cache=0.02,latency=0.05x8");
  EXPECT_EQ(plan.config().seed, 7u);
  EXPECT_DOUBLE_EQ(plan.config().decode_fail, 0.1);
  EXPECT_DOUBLE_EQ(plan.config().alloc_fail, 0.05);
  EXPECT_DOUBLE_EQ(plan.config().cache_drop, 0.02);
  EXPECT_DOUBLE_EQ(plan.config().latency_spike, 0.05);
  EXPECT_EQ(plan.config().spike_ticks, 8);
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(FaultPlan::parse(plan.spec()).config(), plan.config());
  // Keys in any order; omitted keys stay off.
  EXPECT_DOUBLE_EQ(FaultPlan::parse("alloc=0.5,seed=3").config().alloc_fail,
                   0.5);
  EXPECT_DOUBLE_EQ(FaultPlan::parse("alloc=0.5,seed=3").config().decode_fail,
                   0.0);

  EXPECT_THROW(FaultPlan::parse("decode=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("decode=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("decode=fast"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("frobnicate=0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("decode"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("latency=0.1x0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("seed=banana"), std::invalid_argument);
}

TEST(FaultPlan, IoSitesParseRoundTripAndCrashIsExact) {
  const FaultPlan plan =
      FaultPlan::parse("seed=9,write=0.1,sync=0.05,rename=0.02,crash=42");
  EXPECT_DOUBLE_EQ(plan.config().write_fail, 0.1);
  EXPECT_DOUBLE_EQ(plan.config().sync_fail, 0.05);
  EXPECT_DOUBLE_EQ(plan.config().rename_fail, 0.02);
  EXPECT_EQ(plan.config().crash_at, 42);
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(FaultPlan::parse(plan.spec()).config(), plan.config());
  // A crash plan alone is an enabled plan (all rates zero).
  EXPECT_TRUE(FaultPlan::parse("crash=0").enabled());
  EXPECT_THROW(FaultPlan::parse("crash=-1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("write=1.5"), std::invalid_argument);

  // crash=N is an exact-sequence kill, not a rate: exactly one op fires,
  // identically on every evaluation — that is what makes a site sweep
  // visit each I/O operation exactly once.
  int fires = 0;
  for (long long op = 0; op < 1000; ++op) {
    if (plan.crashes_at(op)) ++fires;
  }
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(plan.crashes_at(42));
  // The rate sites are pure in (seed, site, seq), like the model sites.
  const FaultPlan again = FaultPlan::parse(plan.spec());
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    EXPECT_EQ(plan.write_fails(seq), again.write_fails(seq));
    EXPECT_EQ(plan.sync_fails(seq), again.sync_fails(seq));
    EXPECT_EQ(plan.rename_fails(seq), again.rename_fails(seq));
  }
}

TEST(FaultPlan, NetSitesParseRoundTripAndArePure) {
  const FaultPlan plan =
      FaultPlan::parse("seed=5,net_short=0.3,net_eagain=0.2,net_drop=0.01");
  EXPECT_DOUBLE_EQ(plan.config().net_short, 0.3);
  EXPECT_DOUBLE_EQ(plan.config().net_eagain, 0.2);
  EXPECT_DOUBLE_EQ(plan.config().net_drop, 0.01);
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(FaultPlan::parse(plan.spec()).config(), plan.config());
  EXPECT_THROW(FaultPlan::parse("net_short=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("net_drop=-0.1"), std::invalid_argument);

  // The socket sites are pure in (seed, site, seq) and independent
  // streams, like every other site: the same plan replays the same
  // hostile schedule against the same connection ops.
  const FaultPlan again = FaultPlan::parse(plan.spec());
  int short_diff_from_eagain = 0;
  for (std::uint64_t seq = 0; seq < 2000; ++seq) {
    EXPECT_EQ(plan.net_short_read(seq), again.net_short_read(seq));
    EXPECT_EQ(plan.net_eagain(seq), again.net_eagain(seq));
    EXPECT_EQ(plan.net_drops(seq), again.net_drops(seq));
    if (plan.net_short_read(seq) != plan.net_eagain(seq)) {
      ++short_diff_from_eagain;
    }
  }
  EXPECT_GT(short_diff_from_eagain, 0);
  // A net-only plan reads back as enabled; the model sites stay off.
  EXPECT_DOUBLE_EQ(plan.config().decode_fail, 0.0);
}

TEST(FaultPlan, DecisionsArePureFunctionsOfSeedSiteAndSequence) {
  FaultPlanConfig cfg;
  cfg.seed = 42;
  cfg.decode_fail = 0.3;
  cfg.alloc_fail = 0.3;
  cfg.cache_drop = 0.3;
  cfg.latency_spike = 0.3;
  const FaultPlan a(cfg);
  const FaultPlan b(cfg);
  cfg.seed = 43;
  const FaultPlan other(cfg);
  int decode_diff_from_alloc = 0;
  int diff_across_seeds = 0;
  for (std::uint64_t seq = 0; seq < 2000; ++seq) {
    // Same plan, same seq: identical decision, any number of times.
    EXPECT_EQ(a.decode_fails(seq), b.decode_fails(seq));
    EXPECT_EQ(a.alloc_fails(seq), b.alloc_fails(seq));
    EXPECT_EQ(a.cache_drops(seq), b.cache_drops(seq));
    EXPECT_EQ(a.latency_spike_ticks(seq), b.latency_spike_ticks(seq));
    // Sites are independent streams; seeds are independent plans.
    if (a.decode_fails(seq) != a.alloc_fails(seq)) ++decode_diff_from_alloc;
    if (a.decode_fails(seq) != other.decode_fails(seq)) ++diff_across_seeds;
  }
  EXPECT_GT(decode_diff_from_alloc, 0);
  EXPECT_GT(diff_across_seeds, 0);
}

TEST(FaultPlan, RatesAreHonoredAndSpikesHaveFixedMagnitude) {
  FaultPlanConfig cfg;
  cfg.seed = 11;
  cfg.decode_fail = 0.1;
  cfg.latency_spike = 0.5;
  cfg.spike_ticks = 6;
  const FaultPlan plan(cfg);
  int decode_hits = 0, spike_hits = 0;
  const int trials = 20000;
  for (int seq = 0; seq < trials; ++seq) {
    if (plan.decode_fails(static_cast<std::uint64_t>(seq))) ++decode_hits;
    const long long spike =
        plan.latency_spike_ticks(static_cast<std::uint64_t>(seq));
    EXPECT_TRUE(spike == 0 || spike == 6);
    if (spike > 0) ++spike_hits;
  }
  EXPECT_NEAR(static_cast<double>(decode_hits) / trials, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(spike_hits) / trials, 0.5, 0.03);
  // Edge rates: 1.0 always fires, 0.0 never does.
  cfg.decode_fail = 1.0;
  cfg.latency_spike = 0.0;
  const FaultPlan always(cfg);
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_TRUE(always.decode_fails(seq));
    EXPECT_EQ(always.latency_spike_ticks(seq), 0);
  }
}

}  // namespace
}  // namespace vbs
