// Fabric tests: boundary-wire merging, global graph consistency, port maps.
#include <gtest/gtest.h>

#include <set>

#include "fabric/fabric.h"

namespace vbs {
namespace {

ArchSpec small_spec() {
  ArchSpec s;
  s.chan_width = 4;
  s.lut_k = 4;
  return s;
}

TEST(Fabric, NodeCountAccountsForMerges) {
  const ArchSpec s = small_spec();
  const MacroModel mm(s);
  const int w = 3, h = 2;
  const Fabric f(s, w, h);
  // Each interior vertical boundary merges W x-wires; horizontal likewise.
  const int merges = s.chan_width * ((w - 1) * h + w * (h - 1));
  EXPECT_EQ(f.num_nodes(), w * h * mm.num_nodes() - merges);
}

TEST(Fabric, AbuttedWiresAreOneNode) {
  const ArchSpec s = small_spec();
  const Fabric f(s, 3, 3);
  const MacroModel& mm = f.macro();
  const int px = s.pins_on_x(), py = s.pins_on_y();
  for (int t = 0; t < s.chan_width; ++t) {
    // East wire of (0,1) == west wire of (1,1).
    EXPECT_EQ(f.global_node(0, 1, mm.x(t, px)), f.global_node(1, 1, mm.xw(t)));
    // North wire of (1,0) == south wire of (1,1).
    EXPECT_EQ(f.global_node(1, 0, mm.y(t, py)), f.global_node(1, 1, mm.ys(t)));
    // Distinct tracks stay distinct.
    if (t > 0) {
      EXPECT_NE(f.global_node(0, 1, mm.x(t, px)),
                f.global_node(0, 1, mm.x(t - 1, px)));
    }
  }
}

TEST(Fabric, FabricEdgeWiresAreNotMerged) {
  const ArchSpec s = small_spec();
  const Fabric f(s, 2, 2);
  const MacroModel& mm = f.macro();
  // West wires of column 0 dangle: single (macro, port) identity.
  const int g = f.global_node(0, 0, mm.xw(0));
  EXPECT_EQ(f.node_ports(g).size(), 1u);
  // An interior boundary wire has two identities.
  const int gi = f.global_node(0, 0, mm.x(0, s.pins_on_x()));
  ASSERT_EQ(f.node_ports(gi).size(), 2u);
  const auto ports = f.node_ports(gi);
  std::set<int> macros{ports[0].macro, ports[1].macro};
  EXPECT_EQ(macros, (std::set<int>{f.macro_index(0, 0), f.macro_index(1, 0)}));
}

TEST(Fabric, EdgeCountMatchesSwitchBudget) {
  const ArchSpec s = small_spec();
  const Fabric f(s, 2, 3);
  EXPECT_EQ(f.num_edges(),
            static_cast<std::size_t>(f.num_macros()) * s.nroute_bits());
}

TEST(Fabric, EdgesAreSymmetricAndTagged) {
  const ArchSpec s = small_spec();
  const Fabric f(s, 2, 2);
  for (int g = 0; g < f.num_nodes(); ++g) {
    for (const Fabric::Edge& e : f.edges(g)) {
      EXPECT_GE(e.macro, 0);
      EXPECT_LT(e.macro, f.num_macros());
      bool back = false;
      for (const Fabric::Edge& b : f.edges(e.to)) {
        back |= (b.to == g && b.macro == e.macro && b.point == e.point &&
                 b.pair == e.pair);
      }
      EXPECT_TRUE(back);
    }
  }
}

TEST(Fabric, SwitchConfigBitsUniqueAcrossFabric) {
  const ArchSpec s = small_spec();
  const Fabric f(s, 2, 2);
  std::set<std::size_t> seen;
  const auto& points = f.macro().switch_points();
  for (int m = 0; m < f.num_macros(); ++m) {
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
      for (int pair = 0; pair < points[pi].n_switches(); ++pair) {
        const std::size_t bit = f.switch_config_bit(m, static_cast<int>(pi), pair);
        EXPECT_TRUE(seen.insert(bit).second);
        EXPECT_LT(bit, f.config_bits_total());
        // Never inside a logic region.
        EXPECT_GE(static_cast<int>(bit % s.nraw_bits()), s.nlb_bits());
      }
    }
  }
}

TEST(Fabric, PortGlobalMatchesLocalPortNodes) {
  const ArchSpec s = small_spec();
  const Fabric f(s, 3, 3);
  const MacroModel& mm = f.macro();
  for (int port = 0; port < mm.num_ports(); ++port) {
    EXPECT_EQ(f.port_global(1, 1, port),
              f.global_node(1, 1, mm.port_node(port)));
  }
  // Shared wire is the same port node seen from both sides.
  EXPECT_EQ(f.port_global(1, 1, mm.port_of_side(Side::kEast, 2)),
            f.port_global(2, 1, mm.port_of_side(Side::kWest, 2)));
}

TEST(Fabric, NodePositionsWithinGrid) {
  const ArchSpec s = small_spec();
  const Fabric f(s, 4, 3);
  for (int g = 0; g < f.num_nodes(); ++g) {
    const Point p = f.node_pos(g);
    EXPECT_GE(p.x, 0);
    EXPECT_LT(p.x, 4);
    EXPECT_GE(p.y, 0);
    EXPECT_LT(p.y, 3);
  }
}

TEST(Fabric, RejectsBadDimensions) {
  EXPECT_THROW(Fabric(small_spec(), 0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace vbs
