// Same-seed determinism regression: two runs of the whole flow must agree
// bit for bit — placements AND route trees — with bounded-box routing on
// and off. The flow is advertised as reproducible from a single seed
// (BENCH_flow.json trajectories, encode_ablation comparisons and the
// determinism of the VBS coding itself all depend on it), so any hidden
// iteration-order or uninitialized-state dependence is a bug.
//
// The parallel router raises the bar: its speculative route/commit engine
// promises byte-identical trees AND counters to the serial router for any
// thread count, which the Table II circuit suite exercises below. The
// batched parallel placer makes the same promise for placements, stats and
// cost drift, and the minimum-channel-width search promises the same
// answer warm or cold.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "flow/flow.h"
#include "flow/pipeline.h"
#include "netlist/generator.h"
#include "netlist/mcnc.h"
#include "route/mcw.h"
#include "route/route_request.h"

namespace vbs {
namespace {

Netlist test_netlist(std::uint64_t seed) {
  GenParams p;
  p.n_lut = 90;
  p.n_pi = 8;
  p.n_po = 8;
  p.seed = seed;
  return generate_netlist(p);
}

FlowOptions flow_opts(bool bounded_box) {
  FlowOptions o;
  o.arch.chan_width = 10;
  o.seed = 5;
  o.route.bounded_box = bounded_box;
  return o;
}

void expect_identical_routing(const RoutingResult& a, const RoutingResult& b,
                              const char* what) {
  ASSERT_EQ(a.success, b.success) << what;
  ASSERT_EQ(a.routes.size(), b.routes.size()) << what;
  EXPECT_EQ(a.heap_pops, b.heap_pops) << what;
  EXPECT_EQ(a.bbox_retries, b.bbox_retries) << what;
  EXPECT_EQ(a.iterations, b.iterations) << what;
  for (std::size_t n = 0; n < a.routes.size(); ++n) {
    const auto& ra = a.routes[n].nodes;
    const auto& rb = b.routes[n].nodes;
    ASSERT_EQ(ra.size(), rb.size()) << what << " net " << n;
    for (std::size_t k = 0; k < ra.size(); ++k) {
      EXPECT_EQ(ra[k].rr, rb[k].rr) << what << " net " << n << " node " << k;
      EXPECT_EQ(ra[k].parent, rb[k].parent)
          << what << " net " << n << " node " << k;
      EXPECT_EQ(ra[k].fabric_edge, rb[k].fabric_edge)
          << what << " net " << n << " node " << k;
    }
  }
}

void expect_identical(const FlowResult& a, const FlowResult& b) {
  // Placement: byte-identical LUT and I/O assignments.
  ASSERT_EQ(a.placement.lut_loc.size(), b.placement.lut_loc.size());
  for (std::size_t i = 0; i < a.placement.lut_loc.size(); ++i) {
    EXPECT_EQ(a.placement.lut_loc[i], b.placement.lut_loc[i]) << "LUT " << i;
  }
  ASSERT_EQ(a.placement.io_loc.size(), b.placement.io_loc.size());
  for (std::size_t i = 0; i < a.placement.io_loc.size(); ++i) {
    EXPECT_EQ(a.placement.io_loc[i], b.placement.io_loc[i]) << "I/O " << i;
  }
  expect_identical_routing(a.routing, b.routing, "flow");
}

TEST(Determinism, SameSeedSameFlowBoundedBox) {
  FlowResult a = run_flow(test_netlist(3), 11, 11, flow_opts(true));
  FlowResult b = run_flow(test_netlist(3), 11, 11, flow_opts(true));
  ASSERT_TRUE(a.routed());
  expect_identical(a, b);
}

TEST(Determinism, SameSeedSameFlowUnboundedBox) {
  FlowResult a = run_flow(test_netlist(3), 11, 11, flow_opts(false));
  FlowResult b = run_flow(test_netlist(3), 11, 11, flow_opts(false));
  ASSERT_TRUE(a.routed());
  expect_identical(a, b);
}

/// The 5-circuit perf suite (flow_bench's default): the 5 smallest
/// Table II circuits.
std::vector<McncCircuit> suite5() {
  std::vector<McncCircuit> cs = mcnc20();
  std::sort(cs.begin(), cs.end(),
            [](const McncCircuit& a, const McncCircuit& b) {
              return a.lbs < b.lbs;
            });
  cs.resize(5);
  return cs;
}

// The speculative route/commit engine must reproduce the serial router's
// trees, pops, retries and iteration count byte for byte at every thread
// count, on every circuit of the perf suite.
TEST(Determinism, ParallelRoutingMatchesSerialOnSuite) {
  for (const McncCircuit& c : suite5()) {
    SCOPED_TRACE(c.name);
    const Netlist nl = make_mcnc_like(c, 1);
    ArchSpec arch;
    arch.chan_width = 20;
    const PackedDesign pd = pack_netlist(nl, arch);
    PlaceOptions popts;
    popts.seed = 1;
    popts.effort = 0.25;  // routing is under test; keep placement cheap
    const Placement pl = place_design(nl, pd, arch, c.size, c.size, popts);
    const Fabric fabric(arch, c.size, c.size);
    const RouteRequest req = build_route_request(fabric, nl, pd, pl);

    RouterOptions ropts;
    ropts.threads = 1;
    PathfinderRouter serial(fabric, req);
    const RoutingResult base = serial.route(ropts);
    ASSERT_TRUE(base.success) << c.name;

    for (const int threads : {2, 8}) {
      SCOPED_TRACE(threads);
      ropts.threads = threads;
      PathfinderRouter par(fabric, req);
      const RoutingResult got = par.route(ropts);
      EXPECT_EQ(got.threads_used, threads);
      expect_identical_routing(base, got, c.name.c_str());
    }
  }
}

// The batched speculate/validate/commit placer must reproduce the serial
// annealer's placement, stats and cost drift byte for byte at every thread
// count, on every circuit of the perf suite.
TEST(Determinism, ParallelPlacementMatchesSerialOnSuite) {
  for (const McncCircuit& c : suite5()) {
    SCOPED_TRACE(c.name);
    const Netlist nl = make_mcnc_like(c, 1);
    ArchSpec arch;
    arch.chan_width = 20;
    const PackedDesign pd = pack_netlist(nl, arch);
    PlaceOptions base;
    base.seed = 1;
    base.effort = 0.25;  // identity is under test; keep the anneal cheap
    base.threads = 1;
    PlaceStats ref;
    const Placement serial =
        place_design(nl, pd, arch, c.size, c.size, base, &ref);
    for (const int threads : {2, 8}) {
      SCOPED_TRACE(threads);
      PlaceOptions o = base;
      o.threads = threads;
      PlaceStats s;
      const Placement got = place_design(nl, pd, arch, c.size, c.size, o, &s);
      EXPECT_EQ(s.threads_used, threads);
      EXPECT_EQ(got.lut_loc, serial.lut_loc);
      ASSERT_EQ(got.io_loc.size(), serial.io_loc.size());
      for (std::size_t i = 0; i < got.io_loc.size(); ++i) {
        EXPECT_EQ(got.io_loc[i], serial.io_loc[i]) << "I/O " << i;
      }
      EXPECT_EQ(s.moves, ref.moves);
      EXPECT_EQ(s.accepted, ref.accepted);
      EXPECT_EQ(s.temperatures, ref.temperatures);
      EXPECT_EQ(s.initial_cost, ref.initial_cost);
      EXPECT_EQ(s.final_cost, ref.final_cost);
      EXPECT_EQ(s.cost_drift, ref.cost_drift);
    }
  }
}

// FlowOptions::threads reaches both deterministic engines (placer and
// router), so a threaded whole flow must be byte-identical to the serial
// one — placement AND route trees.
TEST(Determinism, ThreadedFlowMatchesSerialFlow) {
  FlowOptions serial = flow_opts(true);
  FlowOptions threaded = serial;
  threaded.threads = 8;
  FlowResult a = run_flow(test_netlist(3), 11, 11, serial);
  FlowResult b = run_flow(test_netlist(3), 11, 11, threaded);
  ASSERT_TRUE(a.routed());
  expect_identical(a, b);
}

/// Every stage-artifact file in a checkpoint directory, keyed by name.
/// flow.meta is deliberately excluded: it records the requested options —
/// including thread counts — so it differs across thread counts by design.
std::map<std::string, std::string> checkpoint_bytes(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    if (e.path().extension() != ".art") continue;
    std::ifstream in(e.path(), std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    files[e.path().filename().string()] = ss.str();
  }
  return files;
}

// The strongest identity statement the stack makes: not just equal
// in-memory artifacts but equal serialized bytes. Each suite circuit's
// flow is run at 1, 2 and 8 threads and checkpointed through the route
// stage; every vbs.artifact.v1 stage file (pack, place, route) must be
// byte-identical across thread counts.
TEST(Determinism, ArtifactBytesIdenticalAcrossThreadCounts) {
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("vbs_det_art_" + std::to_string(::getpid())))
          .string();
  for (const McncCircuit& c : suite5()) {
    SCOPED_TRACE(c.name);
    std::map<std::string, std::string> reference;
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE(threads);
      FlowOptions fo;
      fo.arch.chan_width = 20;
      fo.seed = 1;
      fo.threads = threads;
      fo.place.effort = 0.25;  // identity is under test; keep anneals cheap
      FlowPipeline pipe(make_mcnc_like(c, 1), c.size, c.size, fo);
      pipe.run_to(Stage::kRoute);
      const std::string dir = root + "_" + c.name + "_t" +
                              std::to_string(threads);
      pipe.save_checkpoint(dir, Stage::kRoute);
      std::map<std::string, std::string> got = checkpoint_bytes(dir);
      std::filesystem::remove_all(dir);
      ASSERT_FALSE(got.empty());
      if (threads == 1) {
        reference = std::move(got);
        continue;
      }
      ASSERT_EQ(got.size(), reference.size());
      for (const auto& [name, bytes] : reference) {
        ASSERT_TRUE(got.count(name)) << name;
        EXPECT_EQ(got[name], bytes) << name << " bytes differ";
      }
    }
  }
}

// Warm-started MCW trials (seeded with the previous routable solution's
// surviving tree) must land on the same minimum width as cold trials, for
// measurably less search work. bigkey and tseng are the suite circuits
// whose searches have no deeply-infeasible trial widths, so the
// warm-seeding savings dominate cleanly; see bench/README.md for the
// whole-suite cost profile.
TEST(Determinism, McwWarmStartMatchesColdSearch) {
  for (const char* name : {"bigkey", "tseng"}) {
    SCOPED_TRACE(name);
    const McncCircuit c = mcnc_by_name(name);
    const Netlist nl = make_mcnc_like(c, 1);
    ArchSpec spec;
    spec.chan_width = 20;
    const PackedDesign pd = pack_netlist(nl, spec);
    const Placement pl = place_design(nl, pd, spec, c.size, c.size, {});

    McwOptions warm;
    McwOptions cold = warm;
    cold.warm_start = false;
    const McwResult rw = find_min_channel_width(spec, nl, pd, pl, warm);
    const McwResult rc = find_min_channel_width(spec, nl, pd, pl, cold);
    ASSERT_GT(rw.mcw, 1);
    EXPECT_EQ(rw.mcw, rc.mcw);
    EXPECT_EQ(rw.trials, rc.trials);  // same trial widths either way
    EXPECT_LT(rw.heap_pops, rc.heap_pops)
        << "warm seeding should cut search work";
    // Per-trial logs cover every trial and sum to the totals.
    ASSERT_EQ(rw.trial_log.size(), static_cast<std::size_t>(rw.trials));
    long long pops = 0;
    for (const McwTrial& t : rw.trial_log) pops += t.heap_pops;
    EXPECT_EQ(pops, rw.heap_pops);
  }
}

// trust_seeded_failures waives the cold verification restart on seeded
// failing trials. The error it admits is one-sided by construction — the
// reported MCW can only be >= the exact answer — and every waived restart
// must be visible in the per-trial bookkeeping.
TEST(Determinism, McwTrustedSeededFailuresAreOneSidedAndAudited) {
  const McncCircuit c = mcnc_by_name("tseng");
  const Netlist nl = make_mcnc_like(c, 1);
  ArchSpec spec;
  spec.chan_width = 20;
  const PackedDesign pd = pack_netlist(nl, spec);
  const Placement pl = place_design(nl, pd, spec, c.size, c.size, {});

  McwOptions exact;  // warm with cold verification restarts (the default)
  McwOptions trusting = exact;
  trusting.trust_seeded_failures = true;
  const McwResult re = find_min_channel_width(spec, nl, pd, pl, exact);
  const McwResult rt = find_min_channel_width(spec, nl, pd, pl, trusting);
  ASSERT_GT(re.mcw, 1);
  ASSERT_GT(rt.mcw, 1);
  EXPECT_GE(rt.mcw, re.mcw) << "trusted verdicts may only overestimate";

  // Bookkeeping: the exact search never skips a restart; the trusting
  // search's counter matches its trial log, and only seeded failures are
  // ever marked skipped.
  EXPECT_EQ(re.skipped_restarts, 0);
  int skipped = 0;
  for (const McwTrial& t : rt.trial_log) {
    if (t.skipped_restart) {
      ++skipped;
      EXPECT_TRUE(t.seeded);
      EXPECT_FALSE(t.routable);
    }
  }
  EXPECT_EQ(skipped, rt.skipped_restarts);
}

// An explicitly requested placer seed of 1 must be honored, not silently
// replaced by the flow seed (the old `seed == 1 ? flow : place` smell).
TEST(Determinism, ExplicitPlacerSeedOneIsHonored) {
  const Netlist nl = test_netlist(3);
  ArchSpec arch;
  arch.chan_width = 10;

  FlowOptions inherit;  // place.seed = 0: placement follows the flow seed
  inherit.arch = arch;
  inherit.seed = 5;
  FlowOptions pinned = inherit;  // placement pinned to seed 1
  pinned.place.seed = 1;
  FlowOptions flow1 = inherit;  // flow seed 1 => inherited placement seed 1
  flow1.seed = 1;

  const FlowResult a = run_flow(nl, 11, 11, pinned);
  const FlowResult b = run_flow(nl, 11, 11, flow1);
  ASSERT_EQ(a.placement.lut_loc.size(), b.placement.lut_loc.size());
  for (std::size_t i = 0; i < a.placement.lut_loc.size(); ++i) {
    EXPECT_EQ(a.placement.lut_loc[i], b.placement.lut_loc[i]);
  }

  const FlowResult c = run_flow(nl, 11, 11, inherit);  // seed 5 placement
  bool same = a.placement.lut_loc.size() == c.placement.lut_loc.size();
  if (same) {
    for (std::size_t i = 0; i < a.placement.lut_loc.size(); ++i) {
      same = same && a.placement.lut_loc[i] == c.placement.lut_loc[i];
    }
  }
  EXPECT_FALSE(same) << "seed-1 placement should differ from seed-5";
}

}  // namespace
}  // namespace vbs
