// Same-seed determinism regression: two runs of the whole flow must agree
// bit for bit — placements AND route trees — with bounded-box routing on
// and off. The flow is advertised as reproducible from a single seed
// (BENCH_flow.json trajectories, encode_ablation comparisons and the
// determinism of the VBS coding itself all depend on it), so any hidden
// iteration-order or uninitialized-state dependence is a bug.
#include <gtest/gtest.h>

#include "flow/flow.h"
#include "netlist/generator.h"

namespace vbs {
namespace {

Netlist test_netlist(std::uint64_t seed) {
  GenParams p;
  p.n_lut = 90;
  p.n_pi = 8;
  p.n_po = 8;
  p.seed = seed;
  return generate_netlist(p);
}

FlowOptions flow_opts(bool bounded_box) {
  FlowOptions o;
  o.arch.chan_width = 10;
  o.seed = 5;
  o.route.bounded_box = bounded_box;
  return o;
}

void expect_identical(const FlowResult& a, const FlowResult& b) {
  // Placement: byte-identical LUT and I/O assignments.
  ASSERT_EQ(a.placement.lut_loc.size(), b.placement.lut_loc.size());
  for (std::size_t i = 0; i < a.placement.lut_loc.size(); ++i) {
    EXPECT_EQ(a.placement.lut_loc[i], b.placement.lut_loc[i]) << "LUT " << i;
  }
  ASSERT_EQ(a.placement.io_loc.size(), b.placement.io_loc.size());
  for (std::size_t i = 0; i < a.placement.io_loc.size(); ++i) {
    EXPECT_EQ(a.placement.io_loc[i], b.placement.io_loc[i]) << "I/O " << i;
  }

  // Routing: identical trees, node by node.
  ASSERT_EQ(a.routing.success, b.routing.success);
  ASSERT_EQ(a.routing.routes.size(), b.routing.routes.size());
  EXPECT_EQ(a.routing.heap_pops, b.routing.heap_pops);
  for (std::size_t n = 0; n < a.routing.routes.size(); ++n) {
    const auto& ra = a.routing.routes[n].nodes;
    const auto& rb = b.routing.routes[n].nodes;
    ASSERT_EQ(ra.size(), rb.size()) << "net " << n;
    for (std::size_t k = 0; k < ra.size(); ++k) {
      EXPECT_EQ(ra[k].rr, rb[k].rr) << "net " << n << " node " << k;
      EXPECT_EQ(ra[k].parent, rb[k].parent) << "net " << n << " node " << k;
      EXPECT_EQ(ra[k].fabric_edge, rb[k].fabric_edge)
          << "net " << n << " node " << k;
    }
  }
}

TEST(Determinism, SameSeedSameFlowBoundedBox) {
  FlowResult a = run_flow(test_netlist(3), 11, 11, flow_opts(true));
  FlowResult b = run_flow(test_netlist(3), 11, 11, flow_opts(true));
  ASSERT_TRUE(a.routed());
  expect_identical(a, b);
}

TEST(Determinism, SameSeedSameFlowUnboundedBox) {
  FlowResult a = run_flow(test_netlist(3), 11, 11, flow_opts(false));
  FlowResult b = run_flow(test_netlist(3), 11, 11, flow_opts(false));
  ASSERT_TRUE(a.routed());
  expect_identical(a, b);
}

}  // namespace
}  // namespace vbs
