// VBS binary format tests: Table I field widths, serialize/deserialize
// round-trips, malformed-stream rejection.
#include <gtest/gtest.h>

#include "util/bitio.h"
#include "vbs/vbs_format.h"

namespace vbs {
namespace {

VbsImage sample_image(int cluster = 1) {
  VbsImage img;
  img.spec.chan_width = 5;
  img.spec.lut_k = 6;
  img.task_w = 6;
  img.task_h = 4;
  img.cluster = cluster;
  const int c2 = cluster * cluster;

  VbsEntry a;
  a.cx = 1;
  a.cy = 2 / cluster;
  a.logic.resize(static_cast<std::size_t>(c2));
  a.logic[0].used = true;
  a.logic[0].lut_mask = 0x123456789ABCDEFULL;
  a.logic[0].has_ff = true;
  a.conns.push_back({0, 21});   // west 0 -> pin
  a.conns.push_back({0, 7});    // fan-out
  img.entries.push_back(a);

  VbsEntry b;
  b.cx = 0;
  b.cy = 0;
  b.raw = true;
  b.logic.resize(static_cast<std::size_t>(c2));
  b.raw_routing =
      BitVector(static_cast<std::size_t>(c2) * img.spec.nroute_bits());
  b.raw_routing.set(3, true);
  b.raw_routing.set(100, true);
  img.entries.push_back(b);
  return img;
}

TEST(VbsFormat, RoundTripFineGrain) {
  const VbsImage img = sample_image();
  const BitVector bits = serialize_vbs(img);
  EXPECT_EQ(bits.size(), vbs_size_bits(img));
  const VbsImage back = deserialize_vbs(bits);
  EXPECT_EQ(back.task_w, 6);
  EXPECT_EQ(back.task_h, 4);
  EXPECT_EQ(back.cluster, 1);
  EXPECT_EQ(back.spec.chan_width, 5);
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].cx, 1);
  EXPECT_FALSE(back.entries[0].raw);
  EXPECT_EQ(back.entries[0].conns, img.entries[0].conns);
  EXPECT_EQ(back.entries[0].logic[0].lut_mask, 0x123456789ABCDEFULL);
  EXPECT_TRUE(back.entries[0].logic[0].has_ff);
  EXPECT_TRUE(back.entries[1].raw);
  EXPECT_EQ(back.entries[1].raw_routing, img.entries[1].raw_routing);
  // Serialize again: bit-identical.
  EXPECT_EQ(serialize_vbs(back), bits);
}

TEST(VbsFormat, RoundTripClustered) {
  const VbsImage img = sample_image(2);
  const BitVector bits = serialize_vbs(img);
  EXPECT_EQ(bits.size(), vbs_size_bits(img));
  const VbsImage back = deserialize_vbs(bits);
  EXPECT_EQ(back.cluster, 2);
  ASSERT_EQ(back.entries.size(), 2u);
  ASSERT_EQ(back.entries[0].logic.size(), 4u);
  EXPECT_TRUE(back.entries[0].logic[0].used);
  EXPECT_FALSE(back.entries[0].logic[1].used);
  EXPECT_EQ(serialize_vbs(back), bits);
}

TEST(VbsFormat, HeaderSizesMatchTableOne) {
  // The per-macro fields of Table I: position on D bits each, logic on NLB
  // bits, route count on ceil(log2(2W)), endpoints on M bits.
  VbsImage img = sample_image();
  img.entries.resize(1);
  img.entries[0].conns.resize(3);
  for (auto& c : img.entries[0].conns) c = {1, 2};
  const std::size_t d = bits_for(6 + 1);       // max(task_w, task_h) = 6
  const std::size_t rc = bits_for(2 * 5);      // 2W = 10
  const std::size_t m = bits_for(4 * 5 + 7 + 1);
  EXPECT_EQ(m, 5u);  // paper's example value
  const std::size_t preamble = 4 + 8 + 4 + 2 + 1 + 6 + 6 + 2 * d;
  const std::size_t entry_field = bits_for(6 * 4 + 1);
  const std::size_t macro_rec = 1 + 2 * d + 65 + rc + 3 * 2 * m;
  EXPECT_EQ(vbs_size_bits(img), preamble + entry_field + macro_rec);
}

TEST(VbsFormat, EmptyImageSerializes) {
  VbsImage img;
  img.spec.chan_width = 5;
  img.task_w = 2;
  img.task_h = 2;
  const VbsImage back = deserialize_vbs(serialize_vbs(img));
  EXPECT_TRUE(back.entries.empty());
}

TEST(VbsFormat, RejectsTruncatedStream) {
  const BitVector bits = serialize_vbs(sample_image());
  const BitVector cut = bits.slice(0, bits.size() - 40);
  EXPECT_THROW(deserialize_vbs(cut), BitstreamError);
}

TEST(VbsFormat, RejectsTrailingGarbage) {
  BitVector bits = serialize_vbs(sample_image());
  bits.push_back(true);
  EXPECT_THROW(deserialize_vbs(bits), BitstreamError);
}

TEST(VbsFormat, RejectsBadVersion) {
  BitVector bits = serialize_vbs(sample_image());
  bits.set(0, !bits.get(0));  // corrupt the version nibble
  EXPECT_THROW(deserialize_vbs(bits), BitstreamError);
}

TEST(VbsFormat, RejectsOutOfRangeEntryPosition) {
  VbsImage img = sample_image();
  img.entries[0].cx = 40;  // beyond the 6-wide task
  EXPECT_THROW(serialize_vbs(img), std::invalid_argument);
}

TEST(VbsFormat, CarriesSwitchBoxPattern) {
  VbsImage img = sample_image();
  img.spec.sb_pattern = SbPattern::kWilton;
  const VbsImage back = deserialize_vbs(serialize_vbs(img));
  EXPECT_EQ(back.spec.sb_pattern, SbPattern::kWilton);
}

TEST(VbsFormat, RejectsOversizedConnectionList) {
  VbsImage img = sample_image();
  img.entries[0].conns.assign(64, {0, 1});  // route-count field is 4 bits
  EXPECT_THROW(serialize_vbs(img), std::invalid_argument);
}

TEST(VbsFormat, RawSizeMatchesPaperFormula) {
  ArchSpec s;
  s.chan_width = 20;
  EXPECT_EQ(raw_size_bits(s, 35, 35), 35u * 35u * 1004u);
  s.chan_width = 5;
  EXPECT_EQ(raw_size_bits(s, 3, 2), 6u * 284u);
}

TEST(VbsFormat, CompactFanoutRoundTripAndSmaller) {
  VbsImage img = sample_image();
  // Give entry 0 a heavy fan-out signal: 4 outs on one in, plus another
  // signal.
  img.entries[0].conns = {{0, 21}, {0, 7}, {0, 9}, {0, 11}, {3, 14}};
  const std::size_t plain = vbs_size_bits(img);
  img.compact_fanout = true;
  img.entries[0].compact = true;
  const BitVector bits = serialize_vbs(img);
  EXPECT_EQ(bits.size(), vbs_size_bits(img));
  EXPECT_LT(bits.size(), plain);
  const VbsImage back = deserialize_vbs(bits);
  EXPECT_TRUE(back.compact_fanout);
  EXPECT_TRUE(back.entries[0].compact);
  EXPECT_EQ(back.entries[0].conns, img.entries[0].conns);
  EXPECT_EQ(serialize_vbs(back), bits);
}

TEST(VbsFormat, CompactStreamMayMixCodings) {
  VbsImage img = sample_image();
  img.compact_fanout = true;
  // entries[0] keeps compact = false: per-entry selector says Table I.
  const VbsImage back = deserialize_vbs(serialize_vbs(img));
  EXPECT_TRUE(back.compact_fanout);
  EXPECT_FALSE(back.entries[0].compact);
  EXPECT_EQ(back.entries[0].conns, img.entries[0].conns);
}

TEST(VbsFormat, CompactFanoutRejectsUngroupedList) {
  VbsImage img = sample_image();
  img.compact_fanout = true;
  img.entries[0].compact = true;
  img.entries[0].conns = {{0, 21}, {3, 14}, {0, 7}};  // 0 recurs after 3
  EXPECT_THROW(serialize_vbs(img), std::invalid_argument);
}

TEST(VbsFormat, FanoutGroupsRunLengths) {
  EXPECT_TRUE(fanout_groups({}).empty());
  const std::vector<std::size_t> runs =
      fanout_groups({{5, 1}, {5, 2}, {5, 3}, {2, 1}, {7, 4}, {7, 5}});
  EXPECT_EQ(runs, (std::vector<std::size_t>{3, 1, 2}));
}

TEST(VbsFormat, SizeScalesWithConnections) {
  VbsImage img = sample_image();
  const std::size_t base = vbs_size_bits(img);
  img.entries[0].conns.push_back({3, 9});
  const unsigned m = bits_for(4 * 5 + 7 + 1);
  EXPECT_EQ(vbs_size_bits(img), base + 2 * m);
}

}  // namespace
}  // namespace vbs
