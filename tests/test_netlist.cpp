// Netlist model, text round-trip, generator and MCNC-calibration tests.
#include <gtest/gtest.h>

#include "netlist/generator.h"
#include "netlist/mcnc.h"
#include "netlist/netlist.h"
#include "netlist/netlist_io.h"

namespace vbs {
namespace {

Netlist tiny() {
  Netlist nl;
  nl.name = "tiny";
  Block pi;
  pi.type = BlockType::kInput;
  pi.name = "a";
  const BlockId a = nl.add_block(pi);
  const NetId na = nl.add_net("a", a);
  Block lut;
  lut.type = BlockType::kLut;
  lut.name = "g";
  lut.lut_mask = 0x6;
  const BlockId g = nl.add_block(lut);
  const NetId ng = nl.add_net("g", g);
  nl.connect(na, g, 0);
  Block po;
  po.type = BlockType::kOutput;
  po.name = "z";
  const BlockId z = nl.add_block(po);
  nl.connect(ng, z, 0);
  return nl;
}

TEST(Netlist, TinyValidates) {
  const Netlist nl = tiny();
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.num_luts(), 1);
  EXPECT_EQ(nl.num_inputs(), 1);
  EXPECT_EQ(nl.num_outputs(), 1);
  EXPECT_EQ(nl.num_nets(), 2);
}

TEST(Netlist, ValidateCatchesBrokenBackref) {
  Netlist nl = tiny();
  nl.net(0).sinks[0].pin = 1;  // back-reference now inconsistent
  EXPECT_THROW(nl.validate(), std::logic_error);
}

TEST(Netlist, ValidateCatchesDuplicateSink) {
  Netlist nl = tiny();
  nl.net(0).sinks.push_back(nl.net(0).sinks[0]);
  EXPECT_THROW(nl.validate(), std::logic_error);
}

TEST(NetlistIo, RoundTripTiny) {
  const Netlist nl = tiny();
  const std::string text = netlist_to_string(nl);
  const Netlist back = netlist_from_string(text);
  EXPECT_EQ(back.name, "tiny");
  EXPECT_EQ(back.num_luts(), 1);
  EXPECT_EQ(back.num_inputs(), 1);
  EXPECT_EQ(back.num_outputs(), 1);
  EXPECT_EQ(back.block(1).lut_mask, 0x6u);
  EXPECT_EQ(netlist_to_string(back), text);
}

TEST(NetlistIo, RoundTripGenerated) {
  GenParams p;
  p.n_lut = 120;
  p.n_pi = 9;
  p.n_po = 7;
  p.seed = 3;
  const Netlist nl = generate_netlist(p);
  const Netlist back = netlist_from_string(netlist_to_string(nl));
  EXPECT_EQ(back.num_luts(), nl.num_luts());
  EXPECT_EQ(back.num_nets(), nl.num_nets());
  EXPECT_EQ(netlist_to_string(back), netlist_to_string(nl));
}

TEST(NetlistIo, ParseErrorsAreDiagnosed) {
  EXPECT_THROW(netlist_from_string("frobnicate x\n"), std::runtime_error);
  EXPECT_THROW(netlist_from_string("lut g 3 1 out missing_net\n"),
               std::runtime_error);
  // Duplicate net names rejected.
  EXPECT_THROW(netlist_from_string("input a\ninput a\n"), std::runtime_error);
}

TEST(NetlistIo, CommentsAndBlankLinesIgnored)
{
  const Netlist nl = netlist_from_string(
      "# header comment\n"
      "circuit c\n"
      "\n"
      "input a  # trailing comment\n"
      "lut g 6 0 n0 a\n"
      "output z n0\n");
  EXPECT_EQ(nl.num_luts(), 1);
}

class GeneratorTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorTest, ProducesValidNetlists) {
  GenParams p;
  p.n_lut = 200;
  p.n_pi = 16;
  p.n_po = 12;
  p.seed = GetParam();
  const Netlist nl = generate_netlist(p);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.num_luts(), 200);
  EXPECT_EQ(nl.num_inputs(), 16);
  EXPECT_EQ(nl.num_outputs(), 12);
  // Every LUT has at least one input and at most K.
  for (const Block& b : nl.blocks()) {
    if (b.type != BlockType::kLut) continue;
    EXPECT_GE(b.num_used_inputs(), 1);
    EXPECT_LE(b.num_used_inputs(), p.lut_k);
    EXPECT_NE(b.lut_mask, 0u);
  }
}

TEST_P(GeneratorTest, DeterministicInSeed) {
  GenParams p;
  p.n_lut = 64;
  p.seed = GetParam();
  const Netlist a = generate_netlist(p);
  const Netlist b = generate_netlist(p);
  EXPECT_EQ(netlist_to_string(a), netlist_to_string(b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorTest, ::testing::Values(1, 2, 17, 99));

TEST(Generator, LocalityReducesAverageFanoutDistanceProxy) {
  // Lower p_local must produce more "global" structure: measured here as a
  // larger spread of source indices relative to the sink index.
  auto spread = [](double p_local) {
    GenParams p;
    p.n_lut = 400;
    p.p_local = p_local;
    p.seed = 5;
    const Netlist nl = generate_netlist(p);
    double total = 0;
    long count = 0;
    for (const Block& b : nl.blocks()) {
      if (b.type != BlockType::kLut) continue;
      for (NetId in : b.inputs) {
        if (in == kNoNet) continue;
        const Block& src = nl.block(nl.net(in).driver);
        if (src.type != BlockType::kLut) continue;
        total += std::abs(&src - &b) / sizeof(Block) == 0
                     ? 0.0
                     : std::abs(static_cast<double>(nl.net(in).driver) -
                                static_cast<double>(nl.net(b.output).driver));
        ++count;
      }
    }
    return total / count;
  };
  EXPECT_LT(spread(0.95), spread(0.1));
}

TEST(Generator, RentExponentMappingIsMonotoneAndClamped) {
  // Higher Rent exponents must shed local bias and feed both non-local
  // tails; out-of-range exponents clamp to the calibrated [0.4, 0.9] band.
  GenParams lo, hi;
  apply_rent_exponent(lo, 0.5);
  apply_rent_exponent(hi, 0.75);
  EXPECT_GT(lo.p_local, hi.p_local);
  EXPECT_LT(lo.global_scale_frac, hi.global_scale_frac);
  EXPECT_LT(lo.p_uniform, hi.p_uniform);
  GenParams under, floor;
  apply_rent_exponent(under, 0.1);
  apply_rent_exponent(floor, 0.4);
  EXPECT_DOUBLE_EQ(under.p_local, floor.p_local);
  GenParams over, ceil;
  apply_rent_exponent(over, 1.5);
  apply_rent_exponent(ceil, 0.9);
  EXPECT_DOUBLE_EQ(over.global_scale_frac, ceil.global_scale_frac);
}

TEST(Generator, RentExponentParamOverridesLocalityKnobs) {
  // GenParams::rent_exponent > 0 must generate exactly the netlist that
  // manually applying the mapping produces — the param is a pure override.
  GenParams direct;
  direct.n_lut = 120;
  direct.seed = 9;
  direct.rent_exponent = 0.68;
  GenParams manual = direct;
  manual.rent_exponent = 0.0;
  apply_rent_exponent(manual, 0.68);
  EXPECT_EQ(netlist_to_string(generate_netlist(direct)),
            netlist_to_string(generate_netlist(manual)));
}

TEST(Mcnc, TableMatchesPaper) {
  const auto& t = mcnc20();
  ASSERT_EQ(t.size(), 20u);
  // Spot-check rows of Table II.
  EXPECT_EQ(mcnc_by_name("clma").size, 79);
  EXPECT_EQ(mcnc_by_name("clma").mcw, 15);
  EXPECT_EQ(mcnc_by_name("clma").lbs, 6226);
  EXPECT_EQ(mcnc_by_name("tseng").size, 29);
  EXPECT_EQ(mcnc_by_name("tseng").mcw, 8);
  EXPECT_EQ(mcnc_by_name("tseng").lbs, 799);
  EXPECT_EQ(mcnc_by_name("s38584.1").lbs, 4219);
  EXPECT_THROW(mcnc_by_name("nonesuch"), std::out_of_range);
  // 13 of the 20 contain over a thousand logic blocks (paper Section IV).
  int over_1000 = 0;
  for (const McncCircuit& c : t) over_1000 += (c.lbs > 1000);
  EXPECT_EQ(over_1000, 13);
  // Every circuit fits its published array.
  for (const McncCircuit& c : t) EXPECT_LE(c.lbs, c.size * c.size);
}

TEST(Mcnc, SyntheticStandInMatchesLbCount) {
  const McncCircuit& c = mcnc_by_name("ex5p");
  const Netlist nl = make_mcnc_like(c);
  EXPECT_EQ(nl.num_luts(), c.lbs);
  EXPECT_EQ(nl.num_inputs(), c.n_pi);
  EXPECT_EQ(nl.num_outputs(), c.n_po);
  EXPECT_EQ(nl.name, "ex5p");
}

TEST(Mcnc, CalibrationMonotoneInMcw) {
  // Higher published MCW -> lower locality parameter.
  const GenParams easy = mcnc_gen_params(mcnc_by_name("tseng"));  // MCW 8
  const GenParams hard = mcnc_gen_params(mcnc_by_name("ex1010"));  // MCW 16
  EXPECT_GT(easy.p_local, hard.p_local);
  EXPECT_LT(easy.radius_frac, hard.radius_frac);
}

}  // namespace
}  // namespace vbs
