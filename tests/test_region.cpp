// RegionModel tests: clustering geometry, port numbering, field widths.
#include <gtest/gtest.h>

#include <set>

#include "vbs/region_model.h"

namespace vbs {
namespace {

ArchSpec spec5() {
  ArchSpec s;
  s.chan_width = 5;
  return s;
}

TEST(RegionModel, ClusterOneMatchesMacroModel) {
  const RegionModel rm(spec5(), 1);
  const MacroModel mm(spec5());
  EXPECT_EQ(rm.num_nodes(), mm.num_nodes());
  EXPECT_EQ(rm.num_ports(), mm.num_ports());
  // Identical port numbering at c=1 (VBS compatibility).
  for (int port = 0; port < rm.num_ports(); ++port) {
    EXPECT_EQ(rm.port_node(port), mm.port_node(port));
  }
  EXPECT_EQ(rm.port_field_bits(), spec5().port_field_bits());
}

TEST(RegionModel, PortCountsScaleWithCluster) {
  for (int c : {1, 2, 3, 4}) {
    const RegionModel rm(spec5(), c);
    EXPECT_EQ(rm.num_ports(), 4 * c * 5 + c * c * 7) << "c=" << c;
  }
}

TEST(RegionModel, InternalBoundariesAreMerged) {
  const ArchSpec s = spec5();
  const RegionModel rm(s, 2);
  const MacroModel mm(s);
  const int px = s.pins_on_x(), py = s.pins_on_y();
  for (int t = 0; t < s.chan_width; ++t) {
    EXPECT_EQ(rm.node_of(0, 0, mm.x(t, px)), rm.node_of(1, 0, mm.xw(t)));
    EXPECT_EQ(rm.node_of(0, 0, mm.y(t, py)), rm.node_of(0, 1, mm.ys(t)));
  }
  const int merges = s.chan_width * (2 * 1 + 2 * 1);
  EXPECT_EQ(rm.num_nodes(), 4 * mm.num_nodes() - merges);
}

TEST(RegionModel, PerimeterPortsAreDistinctNodes) {
  const RegionModel rm(spec5(), 3);
  std::set<int> nodes;
  for (int port = 0; port < rm.num_ports(); ++port) {
    const int n = rm.port_node(port);
    EXPECT_TRUE(nodes.insert(n).second) << "port " << port;
    EXPECT_EQ(rm.node_port(n), port);
  }
}

TEST(RegionModel, InteriorNodesHaveNoPort) {
  const RegionModel rm(spec5(), 2);
  int interior = 0;
  for (int n = 0; n < rm.num_nodes(); ++n) interior += (rm.node_port(n) < 0);
  EXPECT_EQ(interior, rm.num_nodes() - rm.num_ports());
}

TEST(RegionModel, FieldWidthsMatchPaperFormulas) {
  const RegionModel r1(spec5(), 1);
  EXPECT_EQ(r1.port_field_bits(), 5u);   // ceil(log2(4*5+7+1))
  EXPECT_EQ(r1.route_count_bits(), 4u);  // ceil(log2(2*5))
  const RegionModel r2(spec5(), 2);
  // 4cW + c^2 L + 1 = 40 + 28 + 1 = 69 -> 7 bits.
  EXPECT_EQ(r2.port_field_bits(), 7u);
  // Clusters widen the route-count field to the endpoint width.
  EXPECT_EQ(r2.route_count_bits(), 7u);
}

TEST(RegionModel, SwitchBitsCoverRegionPayload) {
  const RegionModel rm(spec5(), 2);
  std::set<int> bits;
  const auto& points = rm.macro().switch_points();
  for (int m = 0; m < rm.num_macros(); ++m) {
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
      for (int pair = 0; pair < points[pi].n_switches(); ++pair) {
        EXPECT_TRUE(
            bits.insert(rm.switch_bit(m, static_cast<int>(pi), pair)).second);
      }
    }
  }
  EXPECT_EQ(static_cast<int>(bits.size()),
            rm.num_macros() * spec5().nroute_bits());
  EXPECT_EQ(*bits.begin(), 0);
}

TEST(RegionModel, AdjacencySymmetric) {
  const RegionModel rm(spec5(), 2);
  for (int n = 0; n < rm.num_nodes(); ++n) {
    for (const RegionModel::Adj& a : rm.adjacency(n)) {
      bool back = false;
      for (const RegionModel::Adj& b : rm.adjacency(a.to)) {
        back |= (b.to == n && b.macro == a.macro && b.point == a.point &&
                 b.pair == a.pair);
      }
      EXPECT_TRUE(back);
    }
  }
}

TEST(RegionModel, TilesWithinCluster) {
  const RegionModel rm(spec5(), 3);
  for (int n = 0; n < rm.num_nodes(); ++n) {
    const Point t = rm.node_tile(n);
    EXPECT_GE(t.x, 0);
    EXPECT_LT(t.x, 3);
    EXPECT_GE(t.y, 0);
    EXPECT_LT(t.y, 3);
  }
}

TEST(RegionModel, RejectsBadCluster) {
  EXPECT_THROW(RegionModel(spec5(), 0), std::invalid_argument);
  EXPECT_THROW(RegionModel(spec5(), 64), std::invalid_argument);
}

}  // namespace
}  // namespace vbs
