// Architecture-model tests: the paper's switch-budget formula (Eq. 1), the
// canonical configuration-bit layout, and structural invariants of the
// macro's internal routing graph.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "arch/arch_spec.h"
#include "arch/macro_model.h"

namespace vbs {
namespace {

TEST(ArchSpec, PaperExampleW5) {
  // Section II-B: W=5, 6-LUT: NLB=65, NC+=28, NCT=7, NS=5 -> Nraw=284.
  ArchSpec s;
  s.chan_width = 5;
  s.lut_k = 6;
  EXPECT_EQ(s.nlb_bits(), 65);
  EXPECT_EQ(s.lb_pins(), 7);
  EXPECT_EQ(s.cross_points(), 28);
  EXPECT_EQ(s.tee_points(), 7);
  EXPECT_EQ(s.sb_points(), 5);
  EXPECT_EQ(s.nraw_bits(), 284);
  // M = ceil(log2(4W + L + 1)) = 5 (paper Section II-B).
  EXPECT_EQ(s.port_field_bits(), 5u);
  // "we can code up to floor(Nraw / 2M) = 28 connections" (paper).
  EXPECT_EQ(s.nraw_bits() / (2 * static_cast<int>(s.port_field_bits())), 28);
}

TEST(ArchSpec, NormalizedW20) {
  ArchSpec s;  // defaults: W=20, K=6
  EXPECT_EQ(s.nraw_bits(), 1004);
  EXPECT_EQ(s.ports_per_macro(), 87);
  EXPECT_EQ(s.port_field_bits(), 7u);
}

TEST(ArchSpec, ValidateRejectsBadValues) {
  ArchSpec s;
  s.chan_width = 1;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.chan_width = 20;
  s.lut_k = 7;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.lut_k = 1;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(ArchSpec, PinSplit) {
  ArchSpec s;
  EXPECT_EQ(s.pins_on_x(), 4);
  EXPECT_EQ(s.pins_on_y(), 3);
  EXPECT_EQ(s.pins_on_x() + s.pins_on_y(), s.lb_pins());
}

class MacroModelTest : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  ArchSpec spec() const {
    ArchSpec s;
    s.chan_width = GetParam().first;
    s.lut_k = GetParam().second;
    return s;
  }
};

TEST_P(MacroModelTest, ConfigBitsMatchEquationOne) {
  const MacroModel mm(spec());
  EXPECT_EQ(mm.num_route_bits(), spec().nroute_bits());
  // Sum over switch points must cover the routing region exactly, without
  // gaps or overlaps.
  std::set<int> bits;
  for (const SwitchPoint& pt : mm.switch_points()) {
    for (int i = 0; i < pt.n_switches(); ++i) {
      EXPECT_TRUE(bits.insert(pt.bit_offset + i).second);
    }
  }
  EXPECT_EQ(static_cast<int>(bits.size()), mm.num_route_bits());
  EXPECT_EQ(*bits.begin(), 0);
  EXPECT_EQ(*bits.rbegin(), mm.num_route_bits() - 1);
}

TEST_P(MacroModelTest, SwitchPointCounts) {
  const MacroModel mm(spec());
  int sb = 0, cross = 0, tee = 0;
  for (const SwitchPoint& pt : mm.switch_points()) {
    switch (pt.kind) {
      case SwitchPoint::Kind::kSwitchBox: ++sb; break;
      case SwitchPoint::Kind::kCross: ++cross; break;
      case SwitchPoint::Kind::kTee: ++tee; break;
    }
  }
  EXPECT_EQ(sb, spec().sb_points());
  EXPECT_EQ(cross, spec().cross_points());
  EXPECT_EQ(tee, spec().tee_points());
}

TEST_P(MacroModelTest, PortsAreBijective) {
  const MacroModel mm(spec());
  std::set<int> nodes;
  for (int port = 0; port < mm.num_ports(); ++port) {
    const int n = mm.port_node(port);
    EXPECT_TRUE(nodes.insert(n).second) << "two ports on one node";
    EXPECT_EQ(mm.node_port(n), port);
  }
  int port_nodes = 0;
  for (int n = 0; n < mm.num_nodes(); ++n) {
    port_nodes += (mm.node_port(n) >= 0);
  }
  EXPECT_EQ(port_nodes, mm.num_ports());
}

TEST_P(MacroModelTest, AdjacencyIsSymmetric) {
  const MacroModel mm(spec());
  for (int n = 0; n < mm.num_nodes(); ++n) {
    for (const MacroModel::Adj& a : mm.adjacency(n)) {
      bool back = false;
      for (const MacroModel::Adj& b : mm.adjacency(a.to)) {
        back |= (b.to == n && b.point == a.point && b.pair == a.pair);
      }
      EXPECT_TRUE(back) << mm.node_name(n) << " -> " << mm.node_name(a.to);
    }
  }
}

TEST_P(MacroModelTest, EveryNodeTouchesASwitch) {
  const MacroModel mm(spec());
  for (int n = 0; n < mm.num_nodes(); ++n) {
    EXPECT_FALSE(mm.adjacency(n).empty()) << mm.node_name(n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MacroModelTest,
                         ::testing::Values(std::pair{5, 6}, std::pair{20, 6},
                                           std::pair{8, 4}, std::pair{12, 5},
                                           std::pair{3, 2}, std::pair{32, 6}));

TEST(MacroModel, PairIndexRoundTrip) {
  ArchSpec s;
  const MacroModel mm(s);
  for (const SwitchPoint& pt : mm.switch_points()) {
    for (int pair = 0; pair < pt.n_switches(); ++pair) {
      const auto [a, b] = pt.pair_arms(pair);
      EXPECT_EQ(pt.pair_index(a, b), pair);
    }
  }
}

TEST(MacroModel, WiltonPatternDiffersFromDisjoint) {
  ArchSpec dis;
  ArchSpec wil;
  wil.sb_pattern = SbPattern::kWilton;
  const MacroModel md(dis), mw(wil);
  // Same budget, different topology.
  EXPECT_EQ(md.num_route_bits(), mw.num_route_bits());
  bool any_diff = false;
  for (std::size_t i = 0; i < md.switch_points().size(); ++i) {
    if (md.switch_points()[i].kind == SwitchPoint::Kind::kSwitchBox) {
      any_diff |= md.switch_points()[i].arms != mw.switch_points()[i].arms;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(MacroModel, NodeNamesAreUnique) {
  ArchSpec s;
  s.chan_width = 6;
  const MacroModel mm(s);
  std::set<std::string> names;
  for (int n = 0; n < mm.num_nodes(); ++n) {
    EXPECT_TRUE(names.insert(mm.node_name(n)).second);
  }
}

}  // namespace
}  // namespace vbs
