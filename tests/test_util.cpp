// Unit tests for the util layer: bit vectors, bit I/O, RNG, statistics,
// and the work-stealing thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/bitio.h"
#include "util/bitvector.h"
#include "util/geometry.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace_export.h"

namespace vbs {
namespace {

TEST(BitVector, StartsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(BitVector, SetGet) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.get(i));
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVector, PushBackAcrossWordBoundary) {
  BitVector v;
  for (int i = 0; i < 200; ++i) v.push_back(i % 3 == 0);
  ASSERT_EQ(v.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(v.get(i), i % 3 == 0) << i;
}

TEST(BitVector, AppendBitsMsbFirst) {
  BitVector v;
  v.append_bits(0b1011, 4);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(2));
  EXPECT_TRUE(v.get(3));
  EXPECT_EQ(v.get_bits(0, 4), 0b1011u);
}

TEST(BitVector, SliceAndOverwrite) {
  BitVector v;
  v.append_bits(0xABCD, 16);
  const BitVector s = v.slice(4, 12);
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.get_bits(0, 8), 0xBCu);
  BitVector w(16);
  w.overwrite(4, s);
  EXPECT_EQ(w.get_bits(4, 8), 0xBCu);
  EXPECT_EQ(w.get_bits(0, 4), 0u);
}

TEST(BitVector, EqualityIgnoresNothing) {
  BitVector a, b;
  a.append_bits(0x5A, 8);
  b.append_bits(0x5A, 8);
  EXPECT_EQ(a, b);
  b.set(7, !b.get(7));
  EXPECT_NE(a, b);
  BitVector c;
  c.append_bits(0x5A, 8);
  c.push_back(false);
  EXPECT_NE(a, c);  // size participates in equality
}

TEST(BitVector, ResizeClearsTailBits) {
  BitVector v(10, true);
  v.resize(5);
  v.resize(10);
  for (std::size_t i = 5; i < 10; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitIo, RoundTripMixedWidths) {
  BitWriter w;
  w.write(0x3, 2);
  w.write(0x1F, 5);
  w.write_bit(true);
  w.write(0xDEADBEEF, 32);
  w.write(0, 0);  // zero-width write is a no-op
  const BitVector bits = w.take();
  EXPECT_EQ(bits.size(), 40u);
  BitReader r(bits);
  EXPECT_EQ(r.read(2), 0x3u);
  EXPECT_EQ(r.read(5), 0x1Fu);
  EXPECT_TRUE(r.read_bit());
  EXPECT_EQ(r.read(32), 0xDEADBEEFu);
  EXPECT_TRUE(r.at_end());
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.write(0xF, 4);
  const BitVector bits = w.take();
  BitReader r(bits);
  r.read(4);
  EXPECT_THROW(r.read(1), BitstreamError);
  EXPECT_THROW(r.read_bit(), BitstreamError);
}

TEST(BitIo, BitsFor) {
  EXPECT_EQ(bits_for(0), 1u);
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 1u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(4), 2u);
  EXPECT_EQ(bits_for(5), 3u);
  EXPECT_EQ(bits_for(8), 3u);
  EXPECT_EQ(bits_for(9), 4u);
  // Paper's example: M = ceil(log2(4W + L + 1)) = 5 for W=5, L=7.
  EXPECT_EQ(bits_for(4 * 5 + 7 + 1), 5u);
}

TEST(Rng, DeterministicAndDistinctSeeds) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
    const int v = rng.next_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Stats, SummaryBasics) {
  Summary s;
  s.add(2.0);
  s.add(8.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.geomean(), 4.0, 1e-12);
}

TEST(Stats, VectorHelpers) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, PercentileInterpolatesBetweenRanks) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 30.0);
  // idx = 0.99 * 4 = 3.96: interpolate 40..50, NOT round up to the max.
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 49.6);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 50.0);
  // Unsorted input: percentile sorts a copy.
  EXPECT_DOUBLE_EQ(percentile({30.0, 10.0, 50.0, 20.0, 40.0}, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Stats, PercentileSmallVectors) {
  // n = 1..5 at p = 0 / 0.5 / 0.99 / 1.0. The old nearest-rank rounding
  // collapsed p99 onto the max for every n < 50; with interpolation p99
  // stays strictly below the max whenever the top two samples differ.
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 0.99), 1.99);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 0.99), 2.98);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.99), 3.97);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.99), 4.96);
  for (int n = 2; n <= 5; ++n) {
    std::vector<double> xs;
    for (int i = 1; i <= n; ++i) xs.push_back(static_cast<double>(i));
    EXPECT_LT(percentile(xs, 0.99), percentile(xs, 1.0)) << "n=" << n;
  }
}

TEST(Geometry, RectPredicates) {
  const Rect r{2, 3, 4, 5};
  EXPECT_EQ(r.area(), 20);
  EXPECT_TRUE(r.contains(Point{2, 3}));
  EXPECT_TRUE(r.contains(Point{5, 7}));
  EXPECT_FALSE(r.contains(Point{6, 3}));
  EXPECT_TRUE(r.overlaps(Rect{5, 7, 2, 2}));
  EXPECT_FALSE(r.overlaps(Rect{6, 3, 2, 2}));
  EXPECT_TRUE(r.contains(Rect{2, 3, 4, 5}));
  EXPECT_FALSE(r.contains(Rect{2, 3, 5, 5}));
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
}

TEST(Table, FormatsBits) {
  EXPECT_EQ(TablePrinter::fmt_bits(0), "0");
  EXPECT_EQ(TablePrinter::fmt_bits(999), "999");
  EXPECT_EQ(TablePrinter::fmt_bits(1234567), "1,234,567");
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{3}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, [&](int rank, std::size_t i) {
        ASSERT_GE(rank, 0);
        ASSERT_LT(rank, pool.size());
        ++hits[i];
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
      }
    }
  }
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  for (int job = 0; job < 50; ++job) {
    pool.parallel_for(100, [&](int, std::size_t i) {
      sum += static_cast<long long>(i);
    });
  }
  EXPECT_EQ(sum.load(), 50LL * (99 * 100 / 2));
}

TEST(ThreadPool, StealsSkewedWork) {
  // One early index is much slower than the rest; stealing must let the
  // other participants drain the remainder instead of idling behind it.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  pool.parallel_for(64, [&](int, std::size_t i) {
    if (i == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ++done;
  });
  EXPECT_EQ(done.load(), 64);
}

// --- trace export ----------------------------------------------------------

telem::TraceEvent event(char phase, std::uint32_t pid, std::uint64_t tid,
                        std::uint64_t ts_ns, const char* name,
                        std::uint64_t dur_ns = 0) {
  telem::TraceEvent e;
  e.phase = phase;
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.category = "test";
  e.name = name;
  return e;
}

TEST(TraceExport, EventJsonCarriesTypedArgs) {
  telem::TraceEvent e = event('X', telem::kPidTicks, 3, 1500, "req", 2750);
  e.args.push_back({"id", telem::SpanArg::Type::kInt, 42, 0.0, {}});
  e.args.push_back({"frac", telem::SpanArg::Type::kDouble, 0, 0.25, {}});
  e.args.push_back({"who", telem::SpanArg::Type::kString, 0, 0.0, "a\"b"});
  const std::string json = telem::trace_event_json(e);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
  // ts/dur are microseconds with nanosecond decimals.
  EXPECT_NE(json.find("\"ts\": 1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 2.750"), std::string::npos);
  EXPECT_NE(json.find("\"id\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"frac\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"who\": \"a\\\"b\""), std::string::npos);
}

TEST(TraceExport, ChromeTraceJsonIsWellFormed) {
  // Balanced braces/brackets outside strings is as close to "parses" as a
  // library-free check gets; the CI job runs a real JSON parser on top.
  std::vector<telem::TraceEvent> ev;
  ev.push_back(event('B', telem::kPidWall, 1, 100, "outer"));
  ev.push_back(event('X', telem::kPidTicks, 7, 0, "req", 4000));
  ev.push_back(event('E', telem::kPidWall, 1, 900, "outer"));
  const std::string json = telem::chrome_trace_json(ev);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : json) {
    if (escaped) { escaped = false; continue; }
    if (c == '\\') { escaped = true; continue; }
    if (c == '"') { in_string = !in_string; continue; }
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(TraceExport, PairingAcceptsNestedSpansPerLane) {
  std::vector<telem::TraceEvent> ev;
  ev.push_back(event('B', 1, 1, 100, "outer"));
  ev.push_back(event('B', 1, 1, 200, "inner"));
  ev.push_back(event('X', 2, 5, 50, "req", 1000));  // X never pairs
  ev.push_back(event('E', 1, 1, 300, "inner"));
  ev.push_back(event('E', 1, 1, 400, "outer"));
  ev.push_back(event('B', 1, 2, 150, "other-lane"));
  ev.push_back(event('E', 1, 2, 250, "other-lane"));
  EXPECT_EQ(telem::check_event_pairing(ev), "");
}

TEST(TraceExport, PairingRejectsBrokenStreams) {
  {  // E without a matching B
    std::vector<telem::TraceEvent> ev;
    ev.push_back(event('E', 1, 1, 100, "orphan"));
    EXPECT_NE(telem::check_event_pairing(ev), "");
  }
  {  // mismatched nesting order
    std::vector<telem::TraceEvent> ev;
    ev.push_back(event('B', 1, 1, 100, "outer"));
    ev.push_back(event('B', 1, 1, 200, "inner"));
    ev.push_back(event('E', 1, 1, 300, "outer"));
    EXPECT_NE(telem::check_event_pairing(ev), "");
  }
  {  // unclosed B at end of stream
    std::vector<telem::TraceEvent> ev;
    ev.push_back(event('B', 1, 1, 100, "leak"));
    EXPECT_NE(telem::check_event_pairing(ev), "");
  }
  {  // time going backwards within a lane
    std::vector<telem::TraceEvent> ev;
    ev.push_back(event('B', 1, 1, 500, "a"));
    ev.push_back(event('E', 1, 1, 400, "a"));
    EXPECT_NE(telem::check_event_pairing(ev), "");
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   32,
                   [&](int, std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  // The pool must survive a failed job.
  std::atomic<int> done{0};
  pool.parallel_for(16, [&](int, std::size_t) { ++done; });
  EXPECT_EQ(done.load(), 16);
}

}  // namespace
}  // namespace vbs
