// De-virtualizer unit tests on hand-crafted connection lists: the stateful
// greedy decode, fan-out sharing, port reservation, failure modes.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "vbs/devirtualizer.h"
#include "vbs/region_model.h"

namespace vbs {
namespace {

ArchSpec spec5() {
  ArchSpec s;
  s.chan_width = 5;
  return s;
}

/// Union-find over region nodes given a decoded routing payload: the test's
/// independent model of what the switches connect.
class PayloadConn {
 public:
  PayloadConn(const RegionModel& rm, const BitVector& payload) : rm_(&rm) {
    parent_.resize(static_cast<std::size_t>(rm.num_nodes()));
    std::iota(parent_.begin(), parent_.end(), 0);
    const auto& points = rm.macro().switch_points();
    for (int m = 0; m < rm.num_macros(); ++m) {
      const int ux = m % rm.cluster(), uy = m / rm.cluster();
      for (std::size_t pi = 0; pi < points.size(); ++pi) {
        const SwitchPoint& pt = points[pi];
        for (int pair = 0; pair < pt.n_switches(); ++pair) {
          if (!payload.get(static_cast<std::size_t>(
                  rm.switch_bit(m, static_cast<int>(pi), pair)))) {
            continue;
          }
          const auto [ai, bi] = pt.pair_arms(pair);
          unite(rm.node_of(ux, uy, pt.arms[ai]),
                rm.node_of(ux, uy, pt.arms[bi]));
        }
      }
    }
  }

  bool connected(int port_a, int port_b) {
    return find(rm_->port_node(port_a)) == find(rm_->port_node(port_b));
  }

 private:
  int find(int a) {
    while (parent_[static_cast<std::size_t>(a)] != a) {
      a = parent_[static_cast<std::size_t>(a)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(a)])];
    }
    return a;
  }
  void unite(int a, int b) { parent_[static_cast<std::size_t>(find(a))] = find(b); }

  const RegionModel* rm_;
  std::vector<int> parent_;
};

VbsEntry entry_with(std::vector<VbsConnection> conns, int c = 1) {
  VbsEntry e;
  e.logic.resize(static_cast<std::size_t>(c) * c);
  e.conns = std::move(conns);
  return e;
}

TEST(Devirtualizer, StraightThroughTrack) {
  const RegionModel rm(spec5(), 1);
  Devirtualizer dv(rm);
  // west track 2 -> east track 2.
  const int in = rm.port_of_side(Side::kWest, 0, 2);
  const int out = rm.port_of_side(Side::kEast, 0, 2);
  BitVector payload;
  ASSERT_TRUE(dv.decode_entry(entry_with({{static_cast<std::uint16_t>(in),
                                           static_cast<std::uint16_t>(out)}}),
                              payload));
  EXPECT_GT(payload.popcount(), 0u);
  PayloadConn pc(rm, payload);
  EXPECT_TRUE(pc.connected(in, out));
  // An undeclared port must stay isolated.
  EXPECT_FALSE(pc.connected(in, rm.port_of_side(Side::kNorth, 0, 2)));
}

TEST(Devirtualizer, TrackToPinAndFanout) {
  const RegionModel rm(spec5(), 1);
  Devirtualizer dv(rm);
  const auto in = static_cast<std::uint16_t>(rm.port_of_side(Side::kWest, 0, 1));
  const auto pin = static_cast<std::uint16_t>(rm.port_of_pin(0, 0, 2));
  const auto east = static_cast<std::uint16_t>(rm.port_of_side(Side::kEast, 0, 1));
  BitVector payload;
  DecodeStats stats;
  ASSERT_TRUE(
      dv.decode_entry(entry_with({{in, pin}, {in, east}}), payload, &stats));
  EXPECT_EQ(stats.pairs_routed, 2);
  PayloadConn pc(rm, payload);
  EXPECT_TRUE(pc.connected(in, pin));
  EXPECT_TRUE(pc.connected(in, east));  // fan-out: same signal
}

TEST(Devirtualizer, PinToPinThroughChannel) {
  const RegionModel rm(spec5(), 1);
  Devirtualizer dv(rm);
  // LUT output (pin L-1 = 6) feeding back to an input pin of the same LB.
  const auto out_pin = static_cast<std::uint16_t>(rm.port_of_pin(0, 0, 6));
  const auto in_pin = static_cast<std::uint16_t>(rm.port_of_pin(0, 0, 3));
  BitVector payload;
  ASSERT_TRUE(dv.decode_entry(entry_with({{out_pin, in_pin}}), payload));
  PayloadConn pc(rm, payload);
  EXPECT_TRUE(pc.connected(out_pin, in_pin));
}

TEST(Devirtualizer, TwoSignalsStayDisjoint) {
  const RegionModel rm(spec5(), 1);
  Devirtualizer dv(rm);
  const auto in1 = static_cast<std::uint16_t>(rm.port_of_side(Side::kWest, 0, 0));
  const auto out1 = static_cast<std::uint16_t>(rm.port_of_side(Side::kEast, 0, 0));
  const auto in2 = static_cast<std::uint16_t>(rm.port_of_side(Side::kWest, 0, 3));
  const auto out2 = static_cast<std::uint16_t>(rm.port_of_side(Side::kEast, 0, 3));
  BitVector payload;
  ASSERT_TRUE(
      dv.decode_entry(entry_with({{in1, out1}, {in2, out2}}), payload));
  PayloadConn pc(rm, payload);
  EXPECT_TRUE(pc.connected(in1, out1));
  EXPECT_TRUE(pc.connected(in2, out2));
  EXPECT_FALSE(pc.connected(in1, in2));
}

TEST(Devirtualizer, RejectsSharedOutAcrossSignals) {
  const RegionModel rm(spec5(), 1);
  Devirtualizer dv(rm);
  const auto in1 = static_cast<std::uint16_t>(rm.port_of_side(Side::kWest, 0, 0));
  const auto in2 = static_cast<std::uint16_t>(rm.port_of_side(Side::kWest, 0, 1));
  const auto out = static_cast<std::uint16_t>(rm.port_of_side(Side::kEast, 0, 2));
  BitVector payload;
  EXPECT_FALSE(dv.decode_entry(entry_with({{in1, out}, {in2, out}}), payload));
}

TEST(Devirtualizer, RejectsSelfLoop) {
  const RegionModel rm(spec5(), 1);
  Devirtualizer dv(rm);
  BitVector payload;
  EXPECT_FALSE(dv.decode_entry(entry_with({{3, 3}}), payload));
}

TEST(Devirtualizer, RawEntryCopiedThrough) {
  const RegionModel rm(spec5(), 1);
  Devirtualizer dv(rm);
  VbsEntry e = entry_with({});
  e.raw = true;
  e.raw_routing = BitVector(static_cast<std::size_t>(spec5().nroute_bits()));
  e.raw_routing.set(17, true);
  BitVector payload;
  DecodeStats stats;
  ASSERT_TRUE(dv.decode_entry(e, payload, &stats));
  EXPECT_EQ(payload, e.raw_routing);
  EXPECT_EQ(stats.raw_entries, 1);
}

TEST(Devirtualizer, DeterministicAcrossInstancesAndRepeats) {
  const RegionModel rm(spec5(), 1);
  const VbsEntry e = entry_with({
      {static_cast<std::uint16_t>(rm.port_of_side(Side::kWest, 0, 1)),
       static_cast<std::uint16_t>(rm.port_of_pin(0, 0, 0))},
      {static_cast<std::uint16_t>(rm.port_of_pin(0, 0, 6)),
       static_cast<std::uint16_t>(rm.port_of_side(Side::kNorth, 0, 4))},
  });
  Devirtualizer dv1(rm), dv2(rm);
  BitVector p1, p2, p3;
  ASSERT_TRUE(dv1.decode_entry(e, p1));
  ASSERT_TRUE(dv2.decode_entry(e, p2));
  ASSERT_TRUE(dv1.decode_entry(e, p3));  // reuse after prior decode
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1, p3);
}

TEST(Devirtualizer, ClusterCrossRegionRoute) {
  const RegionModel rm(spec5(), 2);
  Devirtualizer dv(rm);
  // West of the cluster, second row, to a pin in the far corner macro.
  const auto in = static_cast<std::uint16_t>(rm.port_of_side(Side::kWest, 1, 2));
  const auto pin = static_cast<std::uint16_t>(rm.port_of_pin(1, 0, 4));
  BitVector payload;
  ASSERT_TRUE(dv.decode_entry(entry_with({{in, pin}}, 2), payload));
  PayloadConn pc(rm, payload);
  EXPECT_TRUE(pc.connected(in, pin));
}

TEST(Devirtualizer, SaturatedMacroFailsGracefully) {
  // Fill every track with straight-through signals (2W of them — each
  // switch-box point supports an E-W and an N-S crossing simultaneously),
  // then demand a pin-to-pin feedback route. Pin stubs can only meet
  // through track segments, which are all owned by other signals, so the
  // decode must fail rather than short anything together.
  const RegionModel rm(spec5(), 1);
  Devirtualizer dv(rm);
  std::vector<VbsConnection> conns;
  for (int t = 0; t < 5; ++t) {
    conns.push_back({static_cast<std::uint16_t>(rm.port_of_side(Side::kWest, 0, t)),
                     static_cast<std::uint16_t>(rm.port_of_side(Side::kEast, 0, t))});
    conns.push_back({static_cast<std::uint16_t>(rm.port_of_side(Side::kNorth, 0, t)),
                     static_cast<std::uint16_t>(rm.port_of_side(Side::kSouth, 0, t))});
  }
  BitVector payload;
  ASSERT_TRUE(dv.decode_entry(entry_with(conns), payload));  // 2W signals fit
  PayloadConn pc(rm, payload);
  EXPECT_TRUE(pc.connected(rm.port_of_side(Side::kWest, 0, 0),
                           rm.port_of_side(Side::kEast, 0, 0)));
  EXPECT_FALSE(pc.connected(rm.port_of_side(Side::kWest, 0, 0),
                            rm.port_of_side(Side::kNorth, 0, 0)));

  conns.push_back({static_cast<std::uint16_t>(rm.port_of_pin(0, 0, 6)),
                   static_cast<std::uint16_t>(rm.port_of_pin(0, 0, 0))});
  DecodeStats stats;
  EXPECT_FALSE(dv.decode_entry(entry_with(conns), payload, &stats));
  EXPECT_EQ(stats.pairs_failed, 1);
}

}  // namespace
}  // namespace vbs
