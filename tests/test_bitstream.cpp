// Raw bit-stream generation and connectivity-extraction oracle tests.
#include <gtest/gtest.h>

#include "bitstream/bitstream.h"
#include "bitstream/connectivity.h"
#include "flow/flow.h"
#include "netlist/generator.h"

namespace vbs {
namespace {

TEST(Bitstream, LogicBitsRoundTrip) {
  ArchSpec spec;
  LogicConfig lc;
  lc.used = true;
  lc.lut_mask = 0xDEADBEEFCAFEF00DULL;
  lc.has_ff = true;
  BitVector bits;
  append_logic_bits(bits, lc, spec);
  EXPECT_EQ(bits.size(), static_cast<std::size_t>(spec.nlb_bits()));
  const LogicConfig back = parse_logic_bits(bits, 0, spec);
  EXPECT_EQ(back.lut_mask, lc.lut_mask);
  EXPECT_EQ(back.has_ff, lc.has_ff);
  EXPECT_TRUE(back.used);
}

TEST(Bitstream, LogicBitsSmallLut) {
  ArchSpec spec;
  spec.lut_k = 4;
  LogicConfig lc;
  lc.used = true;
  lc.lut_mask = 0xBEEF;
  lc.has_ff = false;
  BitVector bits;
  append_logic_bits(bits, lc, spec);
  EXPECT_EQ(bits.size(), 17u);
  const LogicConfig back = parse_logic_bits(bits, 0, spec);
  EXPECT_EQ(back.lut_mask, 0xBEEFu);
  EXPECT_FALSE(back.has_ff);
}

struct RoutedFixture {
  FlowResult r;
  BitVector raw;

  explicit RoutedFixture(int n_lut = 30, std::uint64_t seed = 5, int w = 8,
                         int grid = 6) {
    GenParams p;
    p.n_lut = n_lut;
    p.n_pi = 4;
    p.n_po = 4;
    p.seed = seed;
    FlowOptions o;
    o.arch.chan_width = w;
    o.seed = seed;
    r = run_flow(generate_netlist(p), grid, grid, o);
    EXPECT_TRUE(r.routed());
    raw = generate_raw_bitstream(*r.fabric, r.netlist, r.packed, r.placement,
                                 r.routing.routes);
  }
};

TEST(Bitstream, SizeIsWTimesHTimesNraw) {
  RoutedFixture f;
  EXPECT_EQ(f.raw.size(),
            static_cast<std::size_t>(6 * 6) * f.r.fabric->spec().nraw_bits());
  EXPECT_EQ(f.raw.size(), raw_size_bits(f.r.fabric->spec(), 6, 6));
}

TEST(Bitstream, SwitchCountMatchesRouteEdges) {
  RoutedFixture f;
  std::size_t edges = 0;
  for (const NetRoute& route : f.r.routing.routes) {
    for (const auto& tn : route.nodes) edges += (tn.fabric_edge >= 0);
  }
  // Logic bits add to popcount; subtract them.
  std::size_t logic_bits = 0;
  const auto logic =
      extract_logic_configs(f.r.netlist, f.r.packed, f.r.placement);
  ArchSpec spec = f.r.fabric->spec();
  for (const LogicConfig& lc : logic) {
    if (!lc.used) continue;
    BitVector lb;
    append_logic_bits(lb, lc, spec);
    logic_bits += lb.popcount();
  }
  EXPECT_EQ(f.raw.popcount(), edges + logic_bits);
}

TEST(Bitstream, EmptyTilesAreAllZero) {
  RoutedFixture f(10, 3, 8, 6);  // sparse: 10 LUTs on 36 tiles
  const auto logic =
      extract_logic_configs(f.r.netlist, f.r.packed, f.r.placement);
  const ArchSpec& spec = f.r.fabric->spec();
  int empty_checked = 0;
  const auto switches = collect_switches(*f.r.fabric, f.r.routing.routes);
  for (int m = 0; m < f.r.fabric->num_macros(); ++m) {
    if (logic[static_cast<std::size_t>(m)].used ||
        !switches[static_cast<std::size_t>(m)].empty()) {
      continue;
    }
    const BitVector frame =
        f.raw.slice(f.r.fabric->macro_config_offset(m),
                    f.r.fabric->macro_config_offset(m) +
                        static_cast<std::size_t>(spec.nraw_bits()));
    EXPECT_EQ(frame.popcount(), 0u);
    ++empty_checked;
  }
  EXPECT_GT(empty_checked, 0);
}

TEST(Connectivity, AcceptsCorrectImage) {
  RoutedFixture f;
  EXPECT_EQ(verify_connectivity(*f.r.fabric, f.raw, f.r.netlist, f.r.packed,
                                f.r.placement),
            "");
}

TEST(Connectivity, DetectsBrokenNet) {
  RoutedFixture f;
  // Clear one routing switch: some net must lose a sink.
  BitVector broken = f.raw;
  const auto switches = collect_switches(*f.r.fabric, f.r.routing.routes);
  const ArchSpec& spec = f.r.fabric->spec();
  bool cleared = false;
  for (int m = 0; m < f.r.fabric->num_macros() && !cleared; ++m) {
    for (const int bit : switches[static_cast<std::size_t>(m)]) {
      broken.set(f.r.fabric->macro_config_offset(m) +
                     static_cast<std::size_t>(spec.nlb_bits()) +
                     static_cast<std::size_t>(bit),
                 false);
      cleared = true;
      break;
    }
  }
  ASSERT_TRUE(cleared);
  EXPECT_NE(verify_connectivity(*f.r.fabric, broken, f.r.netlist, f.r.packed,
                                f.r.placement),
            "");
}

TEST(Connectivity, DetectsShortBetweenNets) {
  RoutedFixture f;
  // Turn on every switch of one macro: almost surely shorts two nets or
  // drives an unused pin.
  BitVector shorted = f.raw;
  const ArchSpec& spec = f.r.fabric->spec();
  // Pick a macro in the middle of the fabric (most likely to carry nets).
  const int m = f.r.fabric->macro_index(3, 3);
  for (int b = 0; b < spec.nroute_bits(); ++b) {
    shorted.set(f.r.fabric->macro_config_offset(m) +
                    static_cast<std::size_t>(spec.nlb_bits()) +
                    static_cast<std::size_t>(b),
                true);
  }
  EXPECT_NE(verify_connectivity(*f.r.fabric, shorted, f.r.netlist, f.r.packed,
                                f.r.placement),
            "");
}

TEST(Connectivity, DetectsLogicCorruption) {
  RoutedFixture f;
  BitVector corrupt = f.raw;
  // Flip a LUT mask bit of a used tile.
  const auto logic =
      extract_logic_configs(f.r.netlist, f.r.packed, f.r.placement);
  for (int m = 0; m < f.r.fabric->num_macros(); ++m) {
    if (!logic[static_cast<std::size_t>(m)].used) continue;
    const std::size_t bit = f.r.fabric->macro_config_offset(m) + 7;
    corrupt.set(bit, !corrupt.get(bit));
    break;
  }
  EXPECT_NE(verify_connectivity(*f.r.fabric, corrupt, f.r.netlist, f.r.packed,
                                f.r.placement),
            "");
}

TEST(Connectivity, RejectsWrongImageSize) {
  RoutedFixture f;
  BitVector wrong = f.raw;
  wrong.push_back(false);
  EXPECT_THROW(Connectivity(*f.r.fabric, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace vbs
