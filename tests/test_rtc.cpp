// Run-time controller tests: allocation, multi-task loading, isolation,
// eviction, relocation/migration, defragmentation, parallel decode.
#include <gtest/gtest.h>

#include "bitstream/connectivity.h"
#include "flow/flow.h"
#include "netlist/generator.h"
#include "rtc/allocator.h"
#include "rtc/controller.h"
#include "rtc/service/stream_cache.h"
#include "util/rng.h"
#include "vbs/encoder.h"

namespace vbs {
namespace {

TEST(Allocator, FirstFitAndRelease) {
  RectAllocator a(10, 10);
  EXPECT_DOUBLE_EQ(a.occupancy(), 0.0);
  const auto p1 = a.find_free(4, 4);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(*p1, (Point{0, 0}));
  a.occupy({0, 0, 4, 4});
  const auto p2 = a.find_free(4, 4);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(*p2, (Point{4, 0}));
  a.occupy({4, 0, 4, 4});
  EXPECT_FALSE(a.find_free(8, 8).has_value());
  EXPECT_TRUE(a.find_free(10, 6).has_value());
  a.release({0, 0, 4, 4});
  EXPECT_EQ(*a.find_free(4, 4), (Point{0, 0}));
  EXPECT_NEAR(a.occupancy(), 0.16, 1e-12);
}

TEST(Allocator, RejectsOverlapAndBadRelease) {
  RectAllocator a(6, 6);
  a.occupy({1, 1, 3, 3});
  EXPECT_THROW(a.occupy({2, 2, 2, 2}), std::logic_error);
  EXPECT_THROW(a.occupy({5, 5, 2, 2}), std::logic_error);  // out of bounds
  EXPECT_THROW(a.release({0, 0, 2, 2}), std::logic_error);
}

TEST(Allocator, SkipScanFindsHoles) {
  RectAllocator a(8, 4);
  a.occupy({0, 0, 3, 4});
  a.occupy({5, 0, 3, 4});
  const auto p = a.find_free(2, 4);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Point{3, 0}));
}

/// Reference mirror of the allocator on a naive grid: every probe scans
/// the rectangle tile by tile, the behaviour the summed-area table must
/// reproduce exactly.
struct NaiveGrid {
  int w, h;
  std::vector<char> tiles;
  NaiveGrid(int w_, int h_) : w(w_), h(h_), tiles(static_cast<std::size_t>(w_) * h_, 0) {}
  void flip(const Rect& r, char v) {
    for (int y = r.y; y < r.y + r.h; ++y) {
      for (int x = r.x; x < r.x + r.w; ++x) {
        tiles[static_cast<std::size_t>(y) * w + x] = v;
      }
    }
  }
  int occupied_in(const Rect& r) const {
    int n = 0;
    for (int y = std::max(0, r.y); y < std::min(h, r.y + r.h); ++y) {
      for (int x = std::max(0, r.x); x < std::min(w, r.x + r.w); ++x) {
        n += tiles[static_cast<std::size_t>(y) * w + x];
      }
    }
    return n;
  }
  std::optional<Point> find_free(int fw, int fh) const {
    if (fw < 1 || fh < 1) return std::nullopt;
    for (int y = 0; y + fh <= h; ++y) {
      for (int x = 0; x + fw <= w; ++x) {
        if (occupied_in({x, y, fw, fh}) == 0) return Point{x, y};
      }
    }
    return std::nullopt;
  }
  int largest_free_rect_area() const {
    int best = 0;
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        for (int rh = 1; y + rh <= h; ++rh) {
          for (int rw = 1; x + rw <= w; ++rw) {
            if (occupied_in({x, y, rw, rh}) == 0) {
              best = std::max(best, rw * rh);
            }
          }
        }
      }
    }
    return best;
  }
};

TEST(Allocator, SummedAreaMatchesNaiveGrid) {
  // Random occupy/release churn; after every mutation the O(1) summed-area
  // probes must agree with the naive per-tile scan for every query shape.
  RectAllocator a(13, 9);
  NaiveGrid ref(13, 9);
  Rng rng(99);
  std::vector<Rect> held;
  for (int step = 0; step < 200; ++step) {
    const int w = rng.next_int(1, 5);
    const int h = rng.next_int(1, 5);
    const Rect r{rng.next_int(0, 13 - w), rng.next_int(0, 9 - h), w, h};
    if (ref.occupied_in(r) == 0) {
      a.occupy(r);
      ref.flip(r, 1);
      held.push_back(r);
    } else if (!held.empty()) {
      const std::size_t i = static_cast<std::size_t>(
          rng.next_below(held.size()));
      a.release(held[i]);
      ref.flip(held[i], 0);
      held[i] = held.back();
      held.pop_back();
    }
    for (int q = 0; q < 20; ++q) {
      const int qw = rng.next_int(1, 13);
      const int qh = rng.next_int(1, 9);
      const Rect probe{rng.next_int(0, 13 - qw), rng.next_int(0, 9 - qh), qw,
                       qh};
      ASSERT_EQ(a.occupied_in(probe), ref.occupied_in(probe))
          << to_string(probe) << " at step " << step;
      ASSERT_EQ(a.is_free(probe), ref.occupied_in(probe) == 0);
      ASSERT_EQ(a.find_free(qw, qh), ref.find_free(qw, qh))
          << qw << "x" << qh << " at step " << step;
    }
    ASSERT_EQ(a.largest_free_rect_area(), ref.largest_free_rect_area())
        << "at step " << step;
  }
}

TEST(Allocator, LargestFreeRectKnownPatterns) {
  RectAllocator a(8, 6);
  EXPECT_EQ(a.largest_free_rect_area(), 48);
  a.occupy({3, 2, 2, 2});  // island in the middle
  EXPECT_EQ(a.largest_free_rect_area(), 18);  // 3x6 flank left of the island
  a.occupy({0, 0, 3, 2});
  a.occupy({5, 0, 3, 2});
  EXPECT_EQ(a.largest_free_rect_area(), 16);  // bottom 8x2 band
  a.occupy({0, 4, 8, 2});
  EXPECT_EQ(a.largest_free_rect_area(), 6);  // 3x2 pockets beside the island
}

/// A routed task plus its serialized VBS and an expectation oracle.
struct TaskFixture {
  FlowResult r;
  BitVector stream;

  explicit TaskFixture(int n_lut, std::uint64_t seed, int grid, int w = 8,
                       int cluster = 1) {
    GenParams p;
    p.n_lut = n_lut;
    p.n_pi = 3;
    p.n_po = 3;
    p.seed = seed;
    FlowOptions o;
    o.arch.chan_width = w;
    o.seed = seed;
    r = run_flow(generate_netlist(p), grid, grid, o);
    EXPECT_TRUE(r.routed());
    EncodeOptions eo;
    eo.cluster = cluster;
    stream = serialize_vbs(encode_vbs(*r.fabric, r.netlist, r.packed,
                                      r.placement, r.routing.routes, eo));
  }

  /// Checks the controller's config at `origin` equals a fresh decode.
  void expect_frames_at(const ReconfigController& rtc, Point origin) const {
    const BitVector solo = devirtualize_image(deserialize_vbs(stream),
                                              rtc.fabric(), origin);
    const int nraw = rtc.fabric().spec().nraw_bits();
    for (int ty = 0; ty < r.fabric->height(); ++ty) {
      for (int tx = 0; tx < r.fabric->width(); ++tx) {
        const std::size_t base = rtc.fabric().macro_config_offset(
            rtc.fabric().macro_index(origin.x + tx, origin.y + ty));
        ASSERT_EQ(rtc.config_memory().slice(base, base + nraw),
                  solo.slice(base, base + nraw))
            << "tile " << tx << "," << ty;
      }
    }
  }
};

TEST(Controller, LoadDecodesCorrectly) {
  TaskFixture t(25, 31, 6);
  ReconfigController rtc(t.r.fabric->spec(), 6, 6);
  const TaskId id = rtc.load(t.stream);
  ASSERT_NE(id, kNoTask);
  EXPECT_EQ(rtc.record(id).rect, (Rect{0, 0, 6, 6}));
  // The whole fabric is the task: verify electrically.
  EXPECT_EQ(verify_connectivity(rtc.fabric(), rtc.config_memory(), t.r.netlist,
                                t.r.packed, t.r.placement),
            "");
  EXPECT_DOUBLE_EQ(rtc.occupancy(), 1.0);
}

TEST(Controller, MultiTaskIsolation) {
  TaskFixture a(20, 41, 5), b(20, 42, 5), c(20, 43, 5);
  ReconfigController rtc(a.r.fabric->spec(), 16, 6);
  const TaskId ia = rtc.load(a.stream);
  const TaskId ib = rtc.load(b.stream);
  const TaskId ic = rtc.load(c.stream);
  ASSERT_NE(ia, kNoTask);
  ASSERT_NE(ib, kNoTask);
  ASSERT_NE(ic, kNoTask);
  EXPECT_EQ(rtc.num_tasks(), 3);
  // Each task's frames must match a solo decode at its origin: neighbours
  // do not disturb each other.
  a.expect_frames_at(rtc, {rtc.record(ia).rect.x, rtc.record(ia).rect.y});
  b.expect_frames_at(rtc, {rtc.record(ib).rect.x, rtc.record(ib).rect.y});
  c.expect_frames_at(rtc, {rtc.record(ic).rect.x, rtc.record(ic).rect.y});
}

TEST(Controller, LoadFailsWhenFull) {
  TaskFixture t(20, 44, 5);
  ReconfigController rtc(t.r.fabric->spec(), 7, 5);
  EXPECT_NE(rtc.load(t.stream), kNoTask);
  EXPECT_EQ(rtc.load(t.stream), kNoTask);  // no room for a second 5x5
}

TEST(Controller, UnloadClearsRegion) {
  TaskFixture t(20, 45, 5);
  ReconfigController rtc(t.r.fabric->spec(), 8, 8);
  const TaskId id = rtc.load_at(t.stream, {2, 1});
  EXPECT_GT(rtc.config_memory().popcount(), 0u);
  rtc.unload(id);
  EXPECT_EQ(rtc.config_memory().popcount(), 0u);
  EXPECT_DOUBLE_EQ(rtc.occupancy(), 0.0);
  EXPECT_THROW(rtc.record(id), std::out_of_range);
}

TEST(Controller, LoadAtRejectsOccupiedOrOutOfBounds) {
  TaskFixture t(20, 46, 5);
  ReconfigController rtc(t.r.fabric->spec(), 8, 8);
  rtc.load_at(t.stream, {0, 0});
  EXPECT_THROW(rtc.load_at(t.stream, {4, 4}), std::logic_error);
  EXPECT_THROW(rtc.load_at(t.stream, {6, 0}), std::logic_error);
}

TEST(Controller, RelocateMovesConfiguration) {
  TaskFixture t(20, 47, 5);
  ReconfigController rtc(t.r.fabric->spec(), 12, 6);
  const TaskId id = rtc.load_at(t.stream, {0, 0});
  rtc.relocate(id, {6, 1});
  EXPECT_EQ(rtc.record(id).rect, (Rect{6, 1, 5, 5}));
  t.expect_frames_at(rtc, {6, 1});
  // Old region is clear: loading there again succeeds.
  EXPECT_NO_THROW(rtc.load_at(t.stream, {0, 0}));
}

TEST(Controller, RelocateRejectsOverlapWithSelf) {
  TaskFixture t(20, 48, 5);
  ReconfigController rtc(t.r.fabric->spec(), 8, 8);
  const TaskId id = rtc.load_at(t.stream, {0, 0});
  EXPECT_THROW(rtc.relocate(id, {2, 2}), std::logic_error);
}

TEST(Controller, DefragmentCompacts) {
  TaskFixture t(12, 49, 4);
  ReconfigController rtc(t.r.fabric->spec(), 16, 4);
  const TaskId a = rtc.load_at(t.stream, {4, 0});
  const TaskId b = rtc.load_at(t.stream, {12, 0});
  rtc.defragment();
  EXPECT_EQ(rtc.record(a).rect, (Rect{0, 0, 4, 4}));
  // b slides into the slot a vacated.
  EXPECT_EQ(rtc.record(b).rect, (Rect{4, 0, 4, 4}));
  t.expect_frames_at(rtc, {0, 0});
  t.expect_frames_at(rtc, {4, 0});
}

class ParallelDecode : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDecode, MatchesSerialDecode) {
  TaskFixture t(60, 50, 9, 8, GetParam() % 2 == 0 ? 2 : 1);
  ReconfigController serial(t.r.fabric->spec(), 9, 9);
  ReconfigController parallel(t.r.fabric->spec(), 9, 9);
  serial.load(t.stream, 1);
  parallel.load(t.stream, GetParam());
  EXPECT_EQ(serial.config_memory(), parallel.config_memory());
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelDecode, ::testing::Values(2, 3, 4, 8));

TEST(Controller, RecordsAndStats) {
  TaskFixture t(25, 51, 6);
  ReconfigController rtc(t.r.fabric->spec(), 6, 6);
  const TaskId id = rtc.load(t.stream, 2);
  const TaskRecord& rec = rtc.record(id);
  EXPECT_EQ(rec.stream_bits, t.stream.size());
  EXPECT_GT(rec.decode.entries_decoded, 0);
  EXPECT_GE(rec.decode_seconds, 0.0);
  EXPECT_EQ(rec.threads_used, 2);
  EXPECT_GE(rtc.total_decode_stats().entries_decoded,
            rec.decode.entries_decoded);
}

TEST(Controller, LoadAtOutOfBoundsEdgeCases) {
  TaskFixture t(20, 53, 5);
  ReconfigController rtc(t.r.fabric->spec(), 8, 8);
  EXPECT_THROW(rtc.load_at(t.stream, {-1, 0}), std::logic_error);
  EXPECT_THROW(rtc.load_at(t.stream, {0, -1}), std::logic_error);
  EXPECT_THROW(rtc.load_at(t.stream, {4, 0}), std::logic_error);  // x overflow
  EXPECT_THROW(rtc.load_at(t.stream, {0, 4}), std::logic_error);  // y overflow
  EXPECT_EQ(rtc.num_tasks(), 0);
  EXPECT_DOUBLE_EQ(rtc.occupancy(), 0.0);  // failed loads leak no tiles
  EXPECT_NO_THROW(rtc.load_at(t.stream, {3, 3}));
}

TEST(Controller, RelocateOntoPartialOverlapRejected) {
  TaskFixture t(20, 54, 5);
  ReconfigController rtc(t.r.fabric->spec(), 16, 8);
  const TaskId a = rtc.load_at(t.stream, {0, 0});
  const TaskId b = rtc.load_at(t.stream, {10, 0});
  // Partially overlapping another task: 3 columns into a's region.
  EXPECT_THROW(rtc.relocate(b, {2, 2}), std::logic_error);
  // Partially overlapping itself (no shadow plane).
  EXPECT_THROW(rtc.relocate(b, {8, 2}), std::logic_error);
  // Both tasks unharmed by the rejected moves.
  EXPECT_EQ(rtc.record(a).rect, (Rect{0, 0, 5, 5}));
  EXPECT_EQ(rtc.record(b).rect, (Rect{10, 0, 5, 5}));
  t.expect_frames_at(rtc, {0, 0});
  t.expect_frames_at(rtc, {10, 0});
}

TEST(Controller, DefragmentPartialClusterTasks) {
  // 5x5 tasks at cluster 2: the right/bottom cluster rows have extent 1 < c,
  // so every migration re-decodes partial-region entries too.
  TaskFixture t(14, 55, 5, 8, /*cluster=*/2);
  ReconfigController rtc(t.r.fabric->spec(), 16, 5);
  const TaskId a = rtc.load_at(t.stream, {5, 0});
  const TaskId b = rtc.load_at(t.stream, {11, 0});
  rtc.defragment();
  EXPECT_EQ(rtc.record(a).rect, (Rect{0, 0, 5, 5}));
  EXPECT_EQ(rtc.record(b).rect, (Rect{5, 0, 5, 5}));
  t.expect_frames_at(rtc, {0, 0});
  t.expect_frames_at(rtc, {5, 0});
}

TEST(Controller, DoubleUnloadThrows) {
  TaskFixture t(20, 56, 5);
  ReconfigController rtc(t.r.fabric->spec(), 8, 8);
  const TaskId id = rtc.load(t.stream);
  rtc.unload(id);
  EXPECT_THROW(rtc.unload(id), std::out_of_range);
  EXPECT_THROW(rtc.relocate(id, {1, 1}), std::out_of_range);
}

TEST(Controller, LoadDecodedMatchesLoadAt) {
  TaskFixture t(20, 57, 5, 8, /*cluster=*/2);
  const VbsImage img = deserialize_vbs(t.stream);
  // Decode payloads out-of-band, the way the service does.
  const auto stream_decoded = decode_stream(img);
  const std::vector<BitVector>& payloads = stream_decoded->payloads;
  ReconfigController direct(t.r.fabric->spec(), 14, 8);
  ReconfigController decoded(t.r.fabric->spec(), 14, 8);
  direct.load_at(t.stream, {2, 1});
  const TaskId id =
      decoded.load_decoded(img, payloads, t.stream.size(), {2, 1});
  EXPECT_EQ(decoded.config_memory(), direct.config_memory());
  EXPECT_EQ(decoded.record(id).rect, (Rect{2, 1, 5, 5}));
  EXPECT_EQ(decoded.record(id).stream_bits, t.stream.size());
  // Pre-decoded relocation lands on the same bits as a decoding one.
  direct.relocate(direct.task_ids()[0], {8, 2});
  decoded.relocate_decoded(id, {8, 2}, payloads);
  EXPECT_EQ(decoded.config_memory(), direct.config_memory());
  // Payload/entry count mismatch is rejected before any state changes.
  std::vector<BitVector> short_payloads(payloads.begin(), payloads.end() - 1);
  EXPECT_THROW(
      decoded.load_decoded(img, short_payloads, t.stream.size(), {0, 0}),
      std::logic_error);
  EXPECT_THROW(decoded.relocate_decoded(id, {0, 0}, short_payloads),
               std::logic_error);
}

TEST(Controller, RejectsArchMismatch) {
  TaskFixture t(20, 52, 5, 8);
  ArchSpec other;
  other.chan_width = 12;
  ReconfigController rtc(other, 8, 8);
  // A stream built for another architecture is hostile input, not a
  // programming error: typed rejection with full rollback.
  try {
    rtc.load_at(t.stream, {0, 0});
    FAIL() << "arch mismatch not rejected";
  } catch (const VbsError& e) {
    EXPECT_EQ(e.code(), VbsErrc::kArchMismatch);
  }
  EXPECT_EQ(rtc.num_tasks(), 0);
  EXPECT_EQ(rtc.occupancy(), 0.0);
}

TEST(Controller, FaultPlanInjectsAndRollsBack) {
  TaskFixture t(20, 52, 5, 8);
  ReconfigController rtc(t.r.fabric->spec(), 8, 8);
  // decode=1 fails every decode deterministically; the controller must
  // roll back cleanly and recover the moment the plan is removed.
  const FaultPlan plan(FaultPlanConfig{7, 1.0, 0.0, 0.0, 0.0, 8});
  rtc.set_fault_plan(&plan);
  try {
    rtc.load_at(t.stream, {0, 0});
    FAIL() << "injected decode fault not thrown";
  } catch (const VbsError& e) {
    EXPECT_EQ(e.code(), VbsErrc::kFaultInjected);
  }
  EXPECT_EQ(rtc.num_tasks(), 0);
  EXPECT_EQ(rtc.occupancy(), 0.0);
  for (const std::uint64_t w : rtc.config_memory().words()) EXPECT_EQ(w, 0u);
  rtc.set_fault_plan(nullptr);
  EXPECT_NE(rtc.load_at(t.stream, {0, 0}), kNoTask);
}

}  // namespace
}  // namespace vbs
