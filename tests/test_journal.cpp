// Durability tests: AtomicFile semantics, WAL framing and torn-tail
// discipline, snapshot compaction, injected I/O failure handling, and
// crash-then-recover smoke. The full kill-at-every-site sweep lives in
// tools/vbscrash.cpp; the recovery-determinism contract (recovered state
// byte-identical to the uninterrupted run at threads {1,2,8}) is asserted
// in tests/test_service.cpp.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "flow/flow.h"
#include "netlist/generator.h"
#include "rtc/service/journal.h"
#include "rtc/service/service.h"
#include "util/io.h"
#include "vbs/encoder.h"

namespace vbs {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("vbs_journal_" + tag + "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

ArchSpec test_arch() {
  ArchSpec arch;
  arch.chan_width = 8;
  return arch;
}

BitVector make_stream(int n_lut, int grid, std::uint64_t seed) {
  GenParams p;
  p.n_lut = n_lut;
  p.n_pi = 3;
  p.n_po = 3;
  p.seed = seed;
  FlowOptions o;
  o.arch = test_arch();
  o.seed = seed;
  FlowResult r = run_flow(generate_netlist(p), grid, grid, o);
  EXPECT_TRUE(r.routed());
  EncodeOptions eo;
  return serialize_vbs(encode_vbs(*r.fabric, r.netlist, r.packed, r.placement,
                                  r.routing.routes, eo));
}

const std::vector<BitVector>& test_streams() {
  static const std::vector<BitVector> streams = {
      make_stream(8, 4, 11), make_stream(10, 4, 12), make_stream(12, 4, 13)};
  return streams;
}

ServiceOptions small_opts(int threads) {
  ServiceOptions o;
  o.threads = threads;
  o.cache_capacity_bits = std::size_t{1} << 20;
  o.queue_limit = 4;
  o.deadline_ticks = 64;
  return o;
}

/// A scripted mixed workload: repeated/new loads across tenants,
/// a relocate, an unload, a priority change, several drains.
std::uint64_t run_scripted(ReconfigService& svc, int compact_rounds = 0) {
  const auto& streams = test_streams();
  std::vector<RequestId> loads;
  svc.set_tenant_priority(1, 5);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < static_cast<int>(streams.size()); ++i) {
      loads.push_back(svc.submit_load(
          streams[static_cast<std::size_t>((i + round) % 3)], i % 3));
    }
    svc.drain();
    if (round == 1) {
      svc.submit_relocate(loads[0], 0);
      svc.submit_unload(loads[1], 1);
      svc.drain();
    }
    if (compact_rounds != 0 && svc.journaled() &&
        round % compact_rounds == 1) {
      svc.compact_journal();
    }
  }
  return svc.state_fingerprint();
}

// --- AtomicFile --------------------------------------------------------------

TEST(AtomicFileTest, CommitPublishesAbandonCleansUp) {
  TempDir dir("atomic");
  fs::create_directories(dir.path);
  const std::string path = dir.path + "/out.bin";
  {
    AtomicFile f(path);
    f.write(std::string("hello"));
    // Not yet visible under the final name.
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::exists(path + ".tmp"));
    f.commit();
  }
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  {
    AtomicFile f(path);
    f.write(std::string("partial replacement"));
    // Abandoned (e.g. an exception unwound past it): temp removed, the
    // committed content untouched.
  }
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::ifstream is(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello");
}

TEST(AtomicFileTest, InjectedCrashLeavesTempBehind) {
  TempDir dir("atomic_crash");
  fs::create_directories(dir.path);
  const std::string path = dir.path + "/out.bin";
  FaultPlan plan = FaultPlan::parse("crash=0");
  IoFaultInjector inj(&plan);
  bool crashed = false;
  try {
    AtomicFile f(path, &inj);
    f.write(std::string("doomed bytes"));
    f.commit();
  } catch (const CrashInjected& c) {
    crashed = true;
    EXPECT_EQ(c.op, 0);
  }
  EXPECT_TRUE(crashed);
  // Real process death leaves the temp file; the final name never appears.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".tmp"));
}

// --- WAL framing and scan ----------------------------------------------------

TEST(ServiceJournalTest, PayloadHelpersRoundTripAndRejectTruncation) {
  std::string p;
  ServiceJournal::put_u32(p, 0xdeadbeefu);
  ServiceJournal::put_u64(p, 0x0123456789abcdefull);
  BitVector bits(13);
  bits.set(0, true);
  bits.set(12, true);
  ServiceJournal::put_bits(p, bits);
  ServiceJournal::put_str(p, "policy=first_fit");
  std::size_t pos = 0;
  EXPECT_EQ(ServiceJournal::get_u32(p, pos), 0xdeadbeefu);
  EXPECT_EQ(ServiceJournal::get_u64(p, pos), 0x0123456789abcdefull);
  EXPECT_EQ(ServiceJournal::get_bits(p, pos), bits);
  EXPECT_EQ(ServiceJournal::get_str(p, pos), "policy=first_fit");
  EXPECT_EQ(pos, p.size());
  // Reading past the end is structural corruption, not a torn tail.
  try {
    ServiceJournal::get_u64(p, pos);
    FAIL() << "expected kBadJournal";
  } catch (const VbsError& e) {
    EXPECT_EQ(e.code(), VbsErrc::kBadJournal);
  }
}

TEST(ServiceJournalTest, FreshJournalRoundTripsRecords) {
  TempDir dir("roundtrip");
  std::string prio;
  ServiceJournal::put_u32(prio, 3);
  ServiceJournal::put_u32(prio, 9);
  {
    ServiceJournal j(dir.path, FaultPlan(), "open-config");
    j.append(ServiceJournal::Kind::kSetPriority, prio);
    std::string commit;
    ServiceJournal::put_u64(commit, 0x1122334455667788ull);
    j.append(ServiceJournal::Kind::kCommit, commit);
    EXPECT_EQ(j.epoch(), 0u);
    EXPECT_GT(j.io_ops(), 0);
  }
  const ServiceJournal::ScanResult sr = ServiceJournal::scan(dir.path);
  ASSERT_EQ(sr.records.size(), 3u);
  EXPECT_EQ(sr.records[0].kind, ServiceJournal::Kind::kOpen);
  EXPECT_EQ(sr.records[0].payload, "open-config");
  EXPECT_EQ(sr.records[1].kind, ServiceJournal::Kind::kSetPriority);
  EXPECT_EQ(sr.records[1].payload, prio);
  EXPECT_EQ(sr.records[2].kind, ServiceJournal::Kind::kCommit);
  EXPECT_FALSE(sr.torn_tail);
  EXPECT_EQ(sr.epoch, 0u);
  EXPECT_TRUE(sr.snapshot_path.empty());
}

TEST(ServiceJournalTest, TornTailDroppedAndTruncated) {
  TempDir dir("torn");
  {
    ServiceJournal j(dir.path, FaultPlan(), "cfg");
    j.append(ServiceJournal::Kind::kCommit, std::string(8, '\x07'));
  }
  const std::string wal = dir.path + "/journal.wal";
  const auto clean_size = fs::file_size(wal);
  {
    // A record cut mid-payload: what death mid-append leaves.
    std::ofstream os(wal, std::ios::binary | std::ios::app);
    const char torn[] = {0x40, 0x00, 0x00, 0x00, 0x07, 'p', 'a', 'r'};
    os.write(torn, sizeof torn);
  }
  ServiceJournal::ScanResult sr = ServiceJournal::scan(dir.path);
  EXPECT_TRUE(sr.torn_tail);
  ASSERT_EQ(sr.records.size(), 2u);
  EXPECT_EQ(fs::file_size(wal), clean_size);  // tail physically dropped
  // Idempotent: a second scan sees a clean journal.
  sr = ServiceJournal::scan(dir.path);
  EXPECT_FALSE(sr.torn_tail);
  EXPECT_EQ(sr.records.size(), 2u);
}

TEST(ServiceJournalTest, CorruptCompleteRecordIsBadJournal) {
  TempDir dir("corrupt");
  {
    ServiceJournal j(dir.path, FaultPlan(), "cfg");
    j.append(ServiceJournal::Kind::kCommit, std::string(8, '\x07'));
    j.append(ServiceJournal::Kind::kCommit, std::string(8, '\x09'));
  }
  const std::string wal = dir.path + "/journal.wal";
  std::string data;
  {
    std::ifstream is(wal, std::ios::binary);
    data.assign((std::istreambuf_iterator<char>(is)),
                std::istreambuf_iterator<char>());
  }
  // Flip one payload byte of a middle record: checksum must catch it.
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x10);
  {
    std::ofstream os(wal, std::ios::binary | std::ios::trunc);
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  try {
    ServiceJournal::scan(dir.path);
    FAIL() << "expected kBadJournal";
  } catch (const VbsError& e) {
    EXPECT_EQ(e.code(), VbsErrc::kBadJournal);
  }
}

TEST(ServiceJournalTest, MissingOrHeadlessWalIsBadJournal) {
  TempDir dir("headless");
  fs::create_directories(dir.path);
  try {
    ServiceJournal::scan(dir.path);
    FAIL() << "expected kBadJournal for missing WAL";
  } catch (const VbsError& e) {
    EXPECT_EQ(e.code(), VbsErrc::kBadJournal);
  }
  {
    std::ofstream os(dir.path + "/journal.wal", std::ios::binary);
    os.write("BOGUS", 5);
  }
  try {
    ServiceJournal::scan(dir.path);
    FAIL() << "expected kBadJournal for bad magic";
  } catch (const VbsError& e) {
    EXPECT_EQ(e.code(), VbsErrc::kBadJournal);
  }
}

// --- service-level durability ------------------------------------------------

TEST(ServiceDurabilityTest, JournaledRunRecoversIdentically) {
  TempDir dir("recover");
  ReconfigService svc(test_arch(), 16, 12, small_opts(2));
  svc.open_journal(dir.path);
  ASSERT_TRUE(svc.journaled());
  const std::uint64_t fp = run_scripted(svc);

  ReconfigService::RecoveryInfo info;
  const auto recovered = ReconfigService::recover(dir.path, 2, &info);
  EXPECT_EQ(recovered->state_fingerprint(), fp);
  EXPECT_FALSE(info.from_snapshot);
  EXPECT_FALSE(info.torn_tail);
  EXPECT_GT(info.admits, 0);
  EXPECT_GT(info.commits, 0);
  EXPECT_TRUE(recovered->journaled());
}

TEST(ServiceDurabilityTest, CompactionSnapshotsAndRecovers) {
  TempDir dir("compact");
  ReconfigService svc(test_arch(), 16, 12, small_opts(1));
  svc.open_journal(dir.path);
  const std::uint64_t fp = run_scripted(svc, /*compact_rounds=*/2);
  svc.compact_journal();

  ReconfigService::RecoveryInfo info;
  const auto recovered = ReconfigService::recover(dir.path, 1, &info);
  EXPECT_EQ(recovered->state_fingerprint(), fp);
  EXPECT_TRUE(info.from_snapshot);
  EXPECT_GT(info.epoch, 0u);
  EXPECT_TRUE(
      fs::exists(dir.path + "/snap." + std::to_string(info.epoch)));
  // Post-final-compaction WAL holds only the barrier: nothing to replay.
  EXPECT_EQ(info.admits, 0);
  EXPECT_EQ(info.commits, 0);
}

TEST(ServiceDurabilityTest, RecoveredServiceKeepsWorking) {
  TempDir dir("continue");
  const auto& streams = test_streams();
  // Reference: one uninterrupted, unjournaled run of script + extra ops.
  ReconfigService ref(test_arch(), 16, 12, small_opts(2));
  run_scripted(ref);
  ref.submit_load(streams[0], 7);
  ref.drain();
  const std::uint64_t want = ref.state_fingerprint();

  ReconfigService svc(test_arch(), 16, 12, small_opts(2));
  svc.open_journal(dir.path);
  run_scripted(svc);
  auto recovered = ReconfigService::recover(dir.path, 2);
  recovered->submit_load(streams[0], 7);
  recovered->drain();
  EXPECT_EQ(recovered->state_fingerprint(), want);
  // The continued ops were journaled too: recovery of the recovery matches.
  recovered.reset();  // release the WAL before re-reading it
  EXPECT_EQ(ReconfigService::recover(dir.path, 2)->state_fingerprint(), want);
}

TEST(ServiceDurabilityTest, PersistentAppendFailureDetachesJournal) {
  // Search for a seed whose injected sync failures spare journal creation
  // but kill one append twice in a row (append retries once). Determinism
  // makes the search itself deterministic: the same seed is found every run.
  const auto& streams = test_streams();
  for (std::uint64_t seed = 1; seed < 64; ++seed) {
    TempDir dir("detach_" + std::to_string(seed));
    const FaultPlan io_plan =
        FaultPlan::parse("seed=" + std::to_string(seed) + ",sync=0.5");
    ReconfigService svc(test_arch(), 16, 12, small_opts(1));
    try {
      svc.open_journal(dir.path, &io_plan);
    } catch (const VbsError&) {
      continue;  // creation itself died; try another seed
    }
    try {
      for (int i = 0; i < 32; ++i) {
        svc.submit_load(streams[static_cast<std::size_t>(i) % 3], 0);
        svc.drain();
      }
    } catch (const VbsError& e) {
      EXPECT_EQ(e.code(), VbsErrc::kFaultInjected);
      EXPECT_FALSE(svc.journaled());  // durability gone, service alive
      svc.submit_load(streams[0], 1);
      EXPECT_FALSE(svc.drain().empty());
      // The WAL is still a clean prefix of complete records.
      const auto sr = ServiceJournal::scan(dir.path);
      EXPECT_FALSE(sr.records.empty());
      const auto recovered = ReconfigService::recover(dir.path, 1);
      EXPECT_TRUE(recovered->journaled());
      return;
    }
  }
  FAIL() << "no seed produced a double append failure";
}

TEST(ServiceDurabilityTest, InjectedCrashMidRunRecovers) {
  // Count the run's I/O ops, then re-run killing in the middle of them.
  TempDir count_dir("crash_count");
  ReconfigService counter(test_arch(), 16, 12, small_opts(1));
  counter.open_journal(count_dir.path);
  run_scripted(counter, /*compact_rounds=*/2);
  const long long total_ops = counter.journal_io_ops();
  ASSERT_GT(total_ops, 8);

  TempDir dir("crash");
  const FaultPlan io_plan =
      FaultPlan::parse("crash=" + std::to_string(total_ops / 2));
  ReconfigService svc(test_arch(), 16, 12, small_opts(1));
  svc.open_journal(dir.path, &io_plan);
  bool crashed = false;
  try {
    run_scripted(svc, /*compact_rounds=*/2);
  } catch (const CrashInjected&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  // The crashed process's memory is gone; the journal alone must yield a
  // consistent service. Recovery is idempotent: recover twice, same state.
  ReconfigService::RecoveryInfo info;
  const auto a = ReconfigService::recover(dir.path, 1, &info);
  const auto b = ReconfigService::recover(dir.path, 1);
  EXPECT_EQ(a->state_fingerprint(), b->state_fingerprint());
  EXPECT_GT(info.records, 0);
}

}  // namespace
}  // namespace vbs
