// Placer tests: legality, determinism, cost improvement, I/O assignment,
// schedule accounting, and parallel-vs-serial identity of the batched
// speculate/validate/commit engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "netlist/generator.h"
#include "pack/pack.h"
#include "place/annealer.h"
#include "place/placement.h"

namespace vbs {
namespace {

struct Fixture {
  Netlist nl;
  ArchSpec spec;
  PackedDesign pd;

  explicit Fixture(int n_lut = 60, std::uint64_t seed = 1) {
    GenParams p;
    p.n_lut = n_lut;
    p.n_pi = 6;
    p.n_po = 5;
    p.seed = seed;
    nl = generate_netlist(p);
    spec.chan_width = 8;
    pd = pack_netlist(nl, spec);
  }
};

TEST(Pack, OneLutPerBlockAndPinCompaction) {
  Fixture f;
  EXPECT_EQ(f.pd.num_luts(), f.nl.num_luts());
  EXPECT_EQ(f.pd.num_ios(), f.nl.num_inputs() + f.nl.num_outputs());
  for (int i = 0; i < f.pd.num_luts(); ++i) {
    const auto& pins = f.pd.lut_pins[static_cast<std::size_t>(i)];
    bool seen_gap = false;
    for (NetId n : pins) {
      if (n == kNoNet) seen_gap = true;
      else EXPECT_FALSE(seen_gap) << "pins not compacted";
    }
  }
}

TEST(Pack, RejectsOverwideLut) {
  Fixture f;
  ArchSpec small;
  small.lut_k = 2;
  bool has_wide = false;
  for (const Block& b : f.nl.blocks()) {
    has_wide |= (b.type == BlockType::kLut && b.num_used_inputs() > 2);
  }
  ASSERT_TRUE(has_wide) << "fixture too small to exercise the check";
  EXPECT_THROW(pack_netlist(f.nl, small), std::invalid_argument);
}

TEST(Place, ProducesLegalPlacement) {
  Fixture f;
  const Placement pl = place_design(f.nl, f.pd, f.spec, 9, 9);
  EXPECT_NO_THROW(pl.validate(f.pd));
  EXPECT_EQ(pl.grid_w, 9);
  EXPECT_EQ(pl.grid_h, 9);
}

TEST(Place, DeterministicInSeed) {
  Fixture f;
  PlaceOptions o;
  o.seed = 42;
  const Placement a = place_design(f.nl, f.pd, f.spec, 9, 9, o);
  const Placement b = place_design(f.nl, f.pd, f.spec, 9, 9, o);
  EXPECT_EQ(a.lut_loc, b.lut_loc);
  for (std::size_t i = 0; i < a.io_loc.size(); ++i) {
    EXPECT_EQ(a.io_loc[i], b.io_loc[i]);
  }
}

TEST(Place, AnnealingImprovesCost) {
  Fixture f(120, 7);
  PlaceStats stats;
  const Placement pl = place_design(f.nl, f.pd, f.spec, 12, 12, {}, &stats);
  (void)pl;
  EXPECT_GT(stats.moves, 0);
  EXPECT_LT(stats.final_cost, stats.initial_cost);
}

TEST(Place, IncrementalBboxMatchesFullRecompute) {
  // The incremental bounding-box bookkeeping must produce the same anneal
  // trajectory as full per-net recomputation: identical deltas mean an
  // identical placement and identical accumulated cost.
  Fixture f(100, 9);
  PlaceOptions inc;
  inc.seed = 11;
  inc.incremental_bbox = true;
  PlaceOptions full = inc;
  full.incremental_bbox = false;
  PlaceStats si, sf;
  const Placement a = place_design(f.nl, f.pd, f.spec, 11, 11, inc, &si);
  const Placement b = place_design(f.nl, f.pd, f.spec, 11, 11, full, &sf);
  EXPECT_EQ(a.lut_loc, b.lut_loc);
  for (std::size_t i = 0; i < a.io_loc.size(); ++i) {
    EXPECT_EQ(a.io_loc[i], b.io_loc[i]);
  }
  EXPECT_EQ(si.moves, sf.moves);
  EXPECT_EQ(si.accepted, sf.accepted);
  EXPECT_NEAR(si.final_cost, sf.final_cost, 1e-9);
}

TEST(Place, SoaKernelMatchesAosReference) {
  // The SoA bounding-box kernel (gathered-span two-pass scan) must produce
  // bit-identical per-net costs to the retained AoS reference sweep — the
  // same cross-check flow_bench's kernel leg runs on every bench run.
  Fixture f(100, 9);
  PlaceOptions o;
  o.seed = 11;
  const Placement pl = place_design(f.nl, f.pd, f.spec, 11, 11, o);
  const PlaceKernelReport kr = bench_place_kernels(f.nl, f.pd, pl, 8);
  EXPECT_EQ(kr.nets, f.nl.num_nets());
  EXPECT_EQ(kr.sweeps, 8);
  EXPECT_GT(kr.total_cost, 0.0);
  EXPECT_TRUE(kr.identical)
      << "SoA sweep costs diverged from the AoS reference";
}

TEST(Place, MovesCountOnlyEvaluatedProposals) {
  // Degenerate to == from slots are skipped without being evaluated; they
  // must not count toward stats->moves — nor, therefore, toward the
  // acceptance fraction accepted/moves that drives the adaptive
  // temperature and range-limit schedule. The per-temperature trip count
  // stays moves_per_t slots, so with the old accounting (skips counted)
  // moves was exactly temperatures * moves_per_t; with the fix it must
  // come in measurably below that bound — at the final range limit of 1 a
  // proposal draws its target from a 3x3 neighborhood, so ~1/9 of
  // late-anneal slots are degenerate.
  Fixture f(100, 9);
  PlaceStats stats;
  PlaceOptions o;
  o.seed = 11;
  place_design(f.nl, f.pd, f.spec, 11, 11, o, &stats);
  const long long moves_per_t = std::max<long long>(
      32, static_cast<long long>(o.effort *
                                 std::pow(f.pd.num_luts(), 4.0 / 3.0)));
  const long long trip_count = moves_per_t * stats.temperatures;
  EXPECT_GT(stats.moves, 0);
  EXPECT_LE(stats.accepted, stats.moves);
  EXPECT_LT(stats.moves, (trip_count * 99) / 100)
      << "skipped slots are being counted as proposals";
}

TEST(Place, ParallelMatchesSerial) {
  // The batched speculate/validate/commit engine promises byte-identical
  // placement, stats and cost_drift at any thread count; the speculation
  // diagnostics are the only fields allowed to differ.
  Fixture f(120, 7);
  PlaceOptions o;
  o.seed = 5;
  PlaceStats ref;
  const Placement a = place_design(f.nl, f.pd, f.spec, 12, 12, o, &ref);
  EXPECT_EQ(ref.threads_used, 1);
  EXPECT_EQ(ref.spec_commits, 0);
  EXPECT_EQ(ref.spec_rejected, 0);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    PlaceOptions op = o;
    op.threads = threads;
    PlaceStats s;
    const Placement b = place_design(f.nl, f.pd, f.spec, 12, 12, op, &s);
    EXPECT_EQ(a.lut_loc, b.lut_loc);
    ASSERT_EQ(a.io_loc.size(), b.io_loc.size());
    for (std::size_t i = 0; i < a.io_loc.size(); ++i) {
      EXPECT_EQ(a.io_loc[i], b.io_loc[i]) << "I/O " << i;
    }
    EXPECT_EQ(s.threads_used, threads);
    EXPECT_EQ(s.moves, ref.moves);
    EXPECT_EQ(s.accepted, ref.accepted);
    EXPECT_EQ(s.temperatures, ref.temperatures);
    EXPECT_EQ(s.initial_cost, ref.initial_cost);
    EXPECT_EQ(s.final_cost, ref.final_cost);
    EXPECT_EQ(s.cost_drift, ref.cost_drift);
    EXPECT_GT(s.spec_commits, 0);
  }
}

TEST(Place, IncrementalCostDriftWithinTolerance) {
  // After hundreds of thousands of incremental += delta updates, the
  // accumulated cost must still match a from-scratch recomputation of
  // every net box to within 1e-6.
  Fixture f(150, 4);
  PlaceStats stats;
  place_design(f.nl, f.pd, f.spec, 13, 13, {}, &stats);
  EXPECT_GT(stats.moves, 0);
  EXPECT_LT(stats.cost_drift, 1e-6);
}

TEST(Place, HpwlConsistentWithStats) {
  Fixture f(80, 3);
  PlaceStats stats;
  const Placement pl = place_design(f.nl, f.pd, f.spec, 10, 10, {}, &stats);
  // final_cost is measured after the last I/O refinement pass, so an
  // independent recomputation over the returned placement matches exactly.
  const double recomputed = placement_hpwl(f.nl, f.pd, pl);
  EXPECT_DOUBLE_EQ(recomputed, stats.final_cost);
}

TEST(Place, RejectsOverfullGrid) {
  Fixture f(60);
  EXPECT_THROW(place_design(f.nl, f.pd, f.spec, 7, 7, {}),
               std::invalid_argument);
}

TEST(Place, RejectsTooManyIosForPerimeter) {
  GenParams p;
  p.n_lut = 4;
  p.n_pi = 200;
  p.n_po = 200;
  const Netlist nl = generate_netlist(p);
  ArchSpec spec;
  spec.chan_width = 4;
  const PackedDesign pd = pack_netlist(nl, spec);
  EXPECT_THROW(place_design(nl, pd, spec, 3, 3, {}), std::invalid_argument);
}

TEST(Place, IoSlotsRespectPerTileCapacity) {
  GenParams p;
  p.n_lut = 30;
  p.n_pi = 40;
  p.n_po = 20;
  const Netlist nl = generate_netlist(p);
  ArchSpec spec;
  spec.chan_width = 8;
  const PackedDesign pd = pack_netlist(nl, spec);
  PlaceOptions o;
  o.io_per_tile = 3;
  const Placement pl = place_design(nl, pd, spec, 8, 8, o);
  std::map<std::tuple<int, int>, int> count;
  for (const IoSlot& s : pl.io_loc) {
    EXPECT_LT(s.track, 3);
    ++count[{static_cast<int>(s.side), s.tile}];
  }
  for (const auto& [k, v] : count) EXPECT_LE(v, 3);
}

TEST(Place, IoTileGeometry) {
  Placement pl;
  pl.grid_w = 10;
  pl.grid_h = 8;
  EXPECT_EQ(pl.io_tile({Side::kWest, 3, 0}), (Point{0, 3}));
  EXPECT_EQ(pl.io_tile({Side::kEast, 3, 0}), (Point{9, 3}));
  EXPECT_EQ(pl.io_tile({Side::kNorth, 4, 0}), (Point{4, 7}));
  EXPECT_EQ(pl.io_tile({Side::kSouth, 4, 0}), (Point{4, 0}));
}

TEST(Place, IoPortIdUsesSideBase) {
  ArchSpec spec;
  spec.chan_width = 20;
  EXPECT_EQ(io_port_id({Side::kWest, 0, 3}, spec), 3);
  EXPECT_EQ(io_port_id({Side::kEast, 0, 3}, spec), 23);
  EXPECT_EQ(io_port_id({Side::kNorth, 0, 3}, spec), 43);
  EXPECT_EQ(io_port_id({Side::kSouth, 0, 3}, spec), 63);
}

}  // namespace
}  // namespace vbs
