// Flow-driver and cross-module integration tests, including the partial-
// cluster (task size not a multiple of c) and decoder-cache paths.
#include <gtest/gtest.h>

#include "bitstream/bitstream.h"
#include "bitstream/connectivity.h"
#include "flow/flow.h"
#include "netlist/generator.h"
#include "vbs/devirtualizer.h"
#include "vbs/encoder.h"

namespace vbs {
namespace {

TEST(Flow, RunFlowWiresEverythingTogether) {
  GenParams p;
  p.n_lut = 30;
  p.seed = 77;
  FlowOptions o;
  o.arch.chan_width = 8;
  FlowResult r = run_flow(generate_netlist(p), 7, 6, o);
  ASSERT_TRUE(r.routed());
  EXPECT_EQ(r.fabric->width(), 7);
  EXPECT_EQ(r.fabric->height(), 6);
  EXPECT_EQ(r.placement.grid_w, 7);
  EXPECT_EQ(static_cast<int>(r.routing.routes.size()),
            static_cast<int>(build_route_request(*r.fabric, r.netlist,
                                                 r.packed, r.placement)
                                 .nets.size()));
}

TEST(Flow, McncFlowUsesPublishedArraySize) {
  FlowOptions o;
  o.arch.chan_width = 20;
  FlowResult r = run_mcnc_flow(mcnc_by_name("des"), o);  // smallest LB count
  EXPECT_EQ(r.fabric->width(), 32);
  EXPECT_EQ(r.netlist.num_luts(), 554);
  EXPECT_TRUE(r.routed());
}

class PartialClusterSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PartialClusterSweep, NonDivisibleTasksDecodeCorrectly) {
  // grid % cluster != 0 exercises the partial-extent region models on the
  // east/north task edges (where I/O terminals live).
  const auto [grid, cluster] = GetParam();
  ASSERT_NE(grid % cluster, 0) << "parameterization must be non-divisible";
  GenParams p;
  p.n_lut = grid * grid / 3;
  p.n_pi = 4;
  p.n_po = 4;
  p.seed = 123 + grid * 10 + cluster;
  FlowOptions o;
  o.arch.chan_width = 8;
  FlowResult r = run_flow(generate_netlist(p), grid, grid, o);
  ASSERT_TRUE(r.routed());
  EncodeOptions eo;
  eo.cluster = cluster;
  EncodeStats stats;
  const VbsImage img = encode_vbs(*r.fabric, r.netlist, r.packed, r.placement,
                                  r.routing.routes, eo, &stats);
  const BitVector decoded = devirtualize_image(
      deserialize_vbs(serialize_vbs(img)), *r.fabric, {0, 0});
  EXPECT_EQ(verify_connectivity(*r.fabric, decoded, r.netlist, r.packed,
                                r.placement),
            "");
}

INSTANTIATE_TEST_SUITE_P(Shapes, PartialClusterSweep,
                         ::testing::Values(std::pair{7, 2}, std::pair{8, 3},
                                           std::pair{9, 4}, std::pair{10, 3},
                                           std::pair{11, 8}, std::pair{5, 4}));

TEST(RegionCache, ExtentsCoverTheTask) {
  ArchSpec spec;
  spec.chan_width = 4;
  RegionDecoderCache cache(spec, 3, 8, 7);
  EXPECT_EQ(cache.extent_of(0, 0), (std::pair{3, 3}));
  EXPECT_EQ(cache.extent_of(2, 0), (std::pair{2, 3}));  // 8 = 3+3+2
  EXPECT_EQ(cache.extent_of(0, 2), (std::pair{3, 1}));  // 7 = 3+3+1
  EXPECT_EQ(cache.extent_of(2, 2), (std::pair{2, 1}));
  // Same extent shape -> same cached model.
  EXPECT_EQ(&cache.region_for(0, 0), &cache.region_for(1, 1));
  EXPECT_NE(&cache.region_for(0, 0), &cache.region_for(2, 0));
  // Partial regions expose only existing ports.
  const RegionModel& partial = cache.region_for(2, 0);  // 2x3 extent
  EXPECT_EQ(partial.extent_w(), 2);
  EXPECT_GE(partial.port_node(partial.port_of_side(Side::kWest, 2, 0)), 0);
  EXPECT_LT(partial.port_node(partial.port_of_pin(2, 0, 0)), 0);
  // East ports live on the extent's last column, not the nominal one.
  const int east_node = partial.port_node(partial.port_of_side(Side::kEast, 0, 1));
  ASSERT_GE(east_node, 0);
  EXPECT_EQ(partial.node_tile(east_node).x, 1);
}

TEST(Route, StallAbortCutsHopelessTrialsShort) {
  GenParams p;
  p.n_lut = 90;
  p.n_pi = 8;
  p.n_po = 8;
  p.seed = 3;
  const Netlist nl = generate_netlist(p);
  ArchSpec spec;
  spec.chan_width = 3;  // far below feasible
  const PackedDesign pd = pack_netlist(nl, spec);
  const Placement pl = place_design(nl, pd, spec, 10, 10, {});
  const Fabric fabric(spec, 10, 10);

  RouterOptions slow;
  slow.max_iterations = 40;
  RouterOptions fast = slow;
  fast.stall_abort = 4;

  PathfinderRouter r1(fabric, build_route_request(fabric, nl, pd, pl));
  const RoutingResult res_slow = r1.route(slow);
  PathfinderRouter r2(fabric, build_route_request(fabric, nl, pd, pl));
  const RoutingResult res_fast = r2.route(fast);
  EXPECT_FALSE(res_slow.success);
  EXPECT_FALSE(res_fast.success);
  EXPECT_LT(res_fast.iterations, res_slow.iterations);
}

TEST(Flow, DecoderRespectsEncoderIterationContract) {
  // A stream validated with a small decode budget must decode with the
  // same budget online (the offline/online contract).
  GenParams p;
  p.n_lut = 40;
  p.seed = 55;
  FlowOptions o;
  o.arch.chan_width = 8;
  FlowResult r = run_flow(generate_netlist(p), 8, 8, o);
  ASSERT_TRUE(r.routed());
  EncodeOptions eo;
  eo.decode_iterations = 1;  // pure greedy feedback
  EncodeStats stats;
  const VbsImage img = encode_vbs(*r.fabric, r.netlist, r.packed, r.placement,
                                  r.routing.routes, eo, &stats);
  // Decode every non-raw entry with a greedy-only decoder.
  RegionDecoderCache cache(img.spec, img.cluster, img.task_w, img.task_h);
  BitVector payload;
  for (const VbsEntry& e : img.entries) {
    Devirtualizer& dv = cache.decoder_for(e.cx, e.cy);
    dv.set_max_iterations(1);
    EXPECT_TRUE(dv.decode_entry(e, payload));
  }
}

}  // namespace
}  // namespace vbs
